// Tests for the real-thread runtime: completion of every accepted request, the §4.3
// per-connection ordering guarantee under stealing, exclusive socket ownership
// (handlers for one flow never run concurrently), work stealing under skewed RSS
// layouts, partitioned-mode isolation, frame reassembly, and clean shutdown — all
// exercised through the Transport interface with BOTH backends: LoopbackTransport
// (in-process rings) and TcpTransport (real epoll sockets over the loopback
// interface). The TCP tests assert that stealing, remote batched syscalls and
// doorbells remain observable in WorkerStats when traffic arrives from real I/O, and
// that pathological 1-byte segmentation cannot reorder a flow's responses.
//
// All assertions are functional (counts, orderings, invariants), never timing-based —
// the host may have a single hardware thread.
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/net/message.h"
#include "src/runtime/client.h"
#include "src/runtime/loopback_transport.h"
#include "src/runtime/runtime.h"
#include "src/runtime/tcp_transport.h"

namespace zygos {
namespace {

RequestHandler EchoHandler() {
  return [](uint64_t flow_id, const std::string& request) {
    (void)flow_id;
    return "echo:" + request;
  };
}

// Collects completions per flow, preserving per-flow arrival order of responses.
class CompletionLog {
 public:
  CompletionHandler Handler() {
    return [this](uint64_t flow_id, uint64_t request_id, std::string_view response,
                  Nanos arrival, bool shed) {
      (void)arrival;
      (void)shed;
      std::lock_guard<std::mutex> guard(mutex_);
      per_flow_[flow_id].push_back(request_id);
      responses_[request_id] = std::string(response);  // the view dies with the frame
      total_++;
    };
  }

  std::vector<uint64_t> FlowOrder(uint64_t flow_id) {
    std::lock_guard<std::mutex> guard(mutex_);
    return per_flow_[flow_id];
  }
  std::string ResponseFor(uint64_t request_id) {
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = responses_.find(request_id);
    return it == responses_.end() ? "" : it->second;
  }
  uint64_t total() {
    std::lock_guard<std::mutex> guard(mutex_);
    return total_;
  }

 private:
  std::mutex mutex_;
  std::map<uint64_t, std::vector<uint64_t>> per_flow_;
  std::map<uint64_t, std::string> responses_;
  uint64_t total_ = 0;
};

RuntimeOptions SmallOptions(RuntimeMode mode, int workers = 3, int flows = 16) {
  RuntimeOptions options;
  options.num_workers = workers;
  options.mode = mode;
  options.num_flows = flows;
  options.yield_when_idle = true;
  return options;
}

// A handler busy enough that the home core cannot drain its backlog alone, forcing
// the shuffle layer's steal path under skewed layouts.
RequestHandler BusyEchoHandler(int spins = 2000) {
  return [spins](uint64_t, const std::string& request) {
    volatile int sink = 0;
    for (int i = 0; i < spins; ++i) {
      sink = sink + i;
    }
    return request;
  };
}

// --- TCP backend test support ----------------------------------------------------------

// Builds a Runtime on a TcpTransport listening on an ephemeral loopback port.
// `transport_out` stays valid for the runtime's lifetime (the runtime owns it).
std::unique_ptr<Runtime> MakeTcpRuntime(RuntimeOptions options, RequestHandler handler,
                                        CompletionHandler on_complete,
                                        TcpTransport** transport_out) {
  auto transport = std::make_unique<TcpTransport>(TcpOptionsFor(options));
  *transport_out = transport.get();
  transport->set_on_complete(std::move(on_complete));
  return std::make_unique<Runtime>(options, std::move(transport), std::move(handler));
}

// Minimal blocking TCP client speaking the framed RPC protocol.
class TestTcpClient {
 public:
  // `rcvbuf` > 0 clamps SO_RCVBUF before connect (fixes the advertised window and
  // disables autotuning) — the deaf-peer stall test needs a small, known backlog cap.
  explicit TestTcpClient(uint16_t port, int rcvbuf = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (rcvbuf > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  ~TestTcpClient() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }
  TestTcpClient(const TestTcpClient&) = delete;
  TestTcpClient& operator=(const TestTcpClient&) = delete;

  bool ok() const { return fd_ >= 0; }

  bool SendBytes(const char* data, size_t len) {
    size_t sent = 0;
    while (sent < len) {
      ssize_t w = ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
      if (w < 0 && errno == EINTR) {
        continue;
      }
      if (w <= 0) {
        return false;
      }
      sent += static_cast<size_t>(w);
    }
    return true;
  }
  bool SendRequest(uint64_t request_id, const std::string& payload) {
    std::string frame;
    EncodeMessage(request_id, payload, frame);
    return SendBytes(frame.data(), frame.size());
  }
  // Sends one frame a single byte at a time: pathological segmentation on the wire.
  bool SendRequestByteByByte(uint64_t request_id, const std::string& payload) {
    std::string frame;
    EncodeMessage(request_id, payload, frame);
    for (char byte : frame) {
      if (!SendBytes(&byte, 1)) {
        return false;
      }
    }
    return true;
  }

  // Blocks until one complete response frame is available.
  bool RecvMessage(Message* out) {
    while (inbox_.empty()) {
      char buf[4096];
      ssize_t r = ::recv(fd_, buf, sizeof buf, 0);
      if (r < 0 && errno == EINTR) {
        continue;
      }
      if (r <= 0) {
        return false;
      }
      if (!parser_.Feed(buf, static_cast<size_t>(r))) {
        return false;
      }
      for (Message& msg : parser_.TakeMessages()) {
        inbox_.push_back(std::move(msg));
      }
    }
    *out = std::move(inbox_.front());
    inbox_.pop_front();
    return true;
  }

 private:
  int fd_ = -1;
  FrameParser parser_;
  std::deque<Message> inbox_;
};

// Closed-loop pipelined echo exchange on one connection; returns false on any
// transport failure or out-of-order / corrupted response.
bool RunEchoExchange(TestTcpClient& client, uint64_t requests, int window,
                     const std::string& payload_prefix) {
  uint64_t sent = 0;
  uint64_t received = 0;
  while (received < requests) {
    while (sent < requests && sent - received < static_cast<uint64_t>(window)) {
      if (!client.SendRequest(sent, payload_prefix + std::to_string(sent))) {
        return false;
      }
      sent++;
    }
    Message response;
    if (!client.RecvMessage(&response)) {
      return false;
    }
    if (response.request_id != received ||
        response.payload != payload_prefix + std::to_string(received)) {
      return false;
    }
    received++;
  }
  return true;
}

TEST(RuntimeTest, EchoesEveryRequestExactlyOnce) {
  CompletionLog log;
  Runtime runtime(SmallOptions(RuntimeMode::kZygos), EchoHandler(), log.Handler());
  runtime.Start();
  constexpr uint64_t kRequests = 2000;
  for (uint64_t i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(runtime.Inject(i % 16, i, "r" + std::to_string(i)));
  }
  runtime.Shutdown();
  EXPECT_EQ(runtime.Completed(), kRequests);
  EXPECT_EQ(log.total(), kRequests);
  EXPECT_EQ(log.ResponseFor(7), "echo:r7");
  EXPECT_EQ(log.ResponseFor(kRequests - 1), "echo:r" + std::to_string(kRequests - 1));
  EXPECT_EQ(runtime.NicDrops(), 0u);
}

TEST(RuntimeTest, PerFlowResponsesStayInOrderUnderStealing) {
  CompletionLog log;
  // A slow-ish handler plus a single hot flow maximizes steal interleavings.
  RequestHandler handler = [](uint64_t, const std::string& request) {
    volatile int sink = 0;
    for (int i = 0; i < 500; ++i) {
      sink = sink + i;
    }
    return request;
  };
  Runtime runtime(SmallOptions(RuntimeMode::kZygos, /*workers=*/4, /*flows=*/4), handler,
                  log.Handler());
  runtime.Start();
  constexpr uint64_t kPerFlow = 500;
  for (uint64_t i = 0; i < kPerFlow; ++i) {
    for (uint64_t flow = 0; flow < 4; ++flow) {
      ASSERT_TRUE(runtime.Inject(flow, flow * kPerFlow + i, "x"));
    }
  }
  runtime.Shutdown();
  for (uint64_t flow = 0; flow < 4; ++flow) {
    auto order = log.FlowOrder(flow);
    ASSERT_EQ(order.size(), kPerFlow) << "flow " << flow;
    for (uint64_t i = 0; i < kPerFlow; ++i) {
      EXPECT_EQ(order[i], flow * kPerFlow + i)
          << "flow " << flow << " response " << i << " out of order";
    }
  }
}

TEST(RuntimeTest, HandlersForOneFlowNeverRunConcurrently) {
  // Exclusive socket ownership (§4.3): per-flow execution is mutually exclusive even
  // when different cores steal the connection at different times.
  constexpr int kFlows = 4;
  std::array<std::atomic<int>, kFlows> in_flight{};
  std::atomic<int> violations{0};
  RequestHandler handler = [&](uint64_t flow_id, const std::string& request) {
    int now = in_flight[flow_id].fetch_add(1) + 1;
    if (now > 1) {
      violations.fetch_add(1);
    }
    std::this_thread::yield();  // widen the race window
    in_flight[flow_id].fetch_sub(1);
    return request;
  };
  CompletionLog log;
  Runtime runtime(SmallOptions(RuntimeMode::kZygos, /*workers=*/4, kFlows), handler,
                  log.Handler());
  runtime.Start();
  for (uint64_t i = 0; i < 3000; ++i) {
    ASSERT_TRUE(runtime.Inject(i % kFlows, i, "x"));
  }
  runtime.Shutdown();
  EXPECT_EQ(violations.load(), 0);
}

TEST(RuntimeTest, SkewedRssTriggersStealing) {
  // Home every flow group on core 0: without stealing, cores 1..3 would stay idle.
  RuntimeOptions options = SmallOptions(RuntimeMode::kZygos, /*workers=*/4, /*flows=*/32);
  CompletionLog log;
  // Busy-ish handler so core 0 cannot drain everything between injections.
  Runtime runtime(options, BusyEchoHandler(), log.Handler());
  runtime.mutable_rss().SetIndirection(
      std::vector<int>(static_cast<size_t>(options.num_flow_groups), 0));
  runtime.Start();
  // Keep a continuous backlog on core 0 until the first steal is claimed (time-capped,
  // not timing-asserted): on a loaded single-hardware-thread host a fixed batch can be
  // drained run-to-completion inside core 0's scheduling quantum, but under sustained
  // ring back-pressure every slice another worker gets is a steal opportunity. A
  // broken steal path simply exhausts the cap and fails the assertion below.
  uint64_t injected = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(8);
  while (runtime.TotalShuffleStats().steals == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    for (int burst = 0; burst < 500; ++burst) {
      if (runtime.Inject(injected % 32, injected, "x")) {
        injected++;
      } else {
        std::this_thread::yield();  // ring full: let the workers run, keep the backlog
      }
    }
  }
  runtime.Shutdown();
  // Every flow is homed on core 0...
  for (uint64_t flow = 0; flow < 32; ++flow) {
    EXPECT_EQ(runtime.HomeCoreOf(flow), 0);
  }
  // ...yet remote cores executed a share of the events.
  WorkerStats total = runtime.TotalStats();
  EXPECT_EQ(total.app_events, injected);
  EXPECT_GT(total.stolen_events, 0u) << "no steals despite a fully skewed layout";
  // Each shuffle-layer steal claims one connection, which may batch several pipelined
  // events; so event count >= claim count > 0.
  ShuffleStats shuffle = runtime.TotalShuffleStats();
  EXPECT_GT(shuffle.steals, 0u);
  EXPECT_GE(total.stolen_events, shuffle.steals);
  // Stolen responses were shipped home: remote syscalls executed on core 0.
  EXPECT_GT(runtime.StatsFor(0).remote_syscalls, 0u);
}

TEST(RuntimeTest, PartitionedModeNeverSteals) {
  RuntimeOptions options =
      SmallOptions(RuntimeMode::kPartitioned, /*workers=*/3, /*flows=*/32);
  CompletionLog log;
  Runtime runtime(options, EchoHandler(), log.Handler());
  // Same pathological skew: partitioned mode must *not* rebalance.
  runtime.mutable_rss().SetIndirection(
      std::vector<int>(static_cast<size_t>(options.num_flow_groups), 0));
  runtime.Start();
  for (uint64_t i = 0; i < 1500; ++i) {
    ASSERT_TRUE(runtime.Inject(i % 32, i, "x"));
  }
  runtime.Shutdown();
  WorkerStats total = runtime.TotalStats();
  EXPECT_EQ(total.app_events, 1500u);
  EXPECT_EQ(total.stolen_events, 0u);
  EXPECT_EQ(runtime.StatsFor(0).app_events, 1500u) << "all events on the home core";
  EXPECT_EQ(runtime.TotalShuffleStats().steals, 0u);
}

// The no-steal ablation knob (RuntimeOptions::enable_stealing = false) must keep the
// idle loop from ever claiming remote work, even under the most steal-inviting layout
// possible: every flow group homed on core 0 with a busy handler and a sustained
// backlog. This is what bench/fig6_live_runtime.cc's "no-steal" configuration runs.
TEST(RuntimeTest, StealingDisabledRecordsZeroStealsUnderSkewedRss) {
  RuntimeOptions options = SmallOptions(RuntimeMode::kZygos, /*workers=*/4, /*flows=*/32);
  options.enable_stealing = false;
  CompletionLog log;
  Runtime runtime(options, BusyEchoHandler(), log.Handler());
  runtime.mutable_rss().SetIndirection(
      std::vector<int>(static_cast<size_t>(options.num_flow_groups), 0));
  runtime.Start();
  // Sustained injection waves (same shape as SkewedRssTriggersStealing, which proves
  // this workload *does* provoke steals when the knob is on).
  uint64_t injected = 0;
  for (int wave = 0; wave < 12; ++wave) {
    for (int burst = 0; burst < 500; ++burst) {
      if (runtime.Inject(injected % 32, injected, "x")) {
        injected++;
      } else {
        std::this_thread::yield();
      }
    }
  }
  runtime.Shutdown();
  WorkerStats total = runtime.TotalStats();
  EXPECT_EQ(total.app_events, injected);
  EXPECT_EQ(total.stolen_events, 0u) << "enable_stealing=false still stole work";
  EXPECT_EQ(runtime.TotalShuffleStats().steals, 0u);
  EXPECT_EQ(runtime.StatsFor(0).app_events, injected) << "all events on the home core";
  EXPECT_EQ(total.remote_syscalls, 0u) << "no thieves, so nothing to ship home";
}

// The no-IPI knob (enable_doorbells = false): stealing still works — the idle loop
// polls — but no doorbell is ever rung, neither for pending packets nor for remote
// syscalls (the home core discovers shipped responses purely by polling).
TEST(RuntimeTest, DoorbellsDisabledSendNoDoorbells) {
  RuntimeOptions options = SmallOptions(RuntimeMode::kZygos, /*workers=*/4, /*flows=*/32);
  options.enable_doorbells = false;
  CompletionLog log;
  Runtime runtime(options, BusyEchoHandler(), log.Handler());
  runtime.mutable_rss().SetIndirection(
      std::vector<int>(static_cast<size_t>(options.num_flow_groups), 0));
  runtime.Start();
  uint64_t injected = 0;
  for (int wave = 0; wave < 12; ++wave) {
    for (int burst = 0; burst < 500; ++burst) {
      if (runtime.Inject(injected % 32, injected, "x")) {
        injected++;
      } else {
        std::this_thread::yield();
      }
    }
  }
  runtime.Shutdown();
  WorkerStats total = runtime.TotalStats();
  EXPECT_EQ(total.app_events, injected);
  EXPECT_EQ(total.doorbells_sent, 0u) << "enable_doorbells=false still rang doorbells";
  EXPECT_EQ(total.doorbells_received, 0u);
  EXPECT_EQ(log.total(), injected) << "polling alone must still complete everything";
}

TEST(RuntimeTest, FramesSplitAcrossSegmentsReassemble) {
  CompletionLog log;
  Runtime runtime(SmallOptions(RuntimeMode::kZygos, /*workers=*/2, /*flows=*/2),
                  EchoHandler(), log.Handler());
  runtime.Start();

  // One message split into three segments, plus two messages coalesced into one
  // segment — both on the same flow, in order.
  std::string split;
  EncodeMessage(Message{100, "split-payload"}, split);
  std::string coalesced;
  EncodeMessage(Message{101, "first"}, coalesced);
  EncodeMessage(Message{102, "second"}, coalesced);

  ASSERT_TRUE(runtime.InjectBytes(0, split.substr(0, 5), 0));
  ASSERT_TRUE(runtime.InjectBytes(0, split.substr(5, 9), 0));
  ASSERT_TRUE(runtime.InjectBytes(0, split.substr(14), 1));
  ASSERT_TRUE(runtime.InjectBytes(0, coalesced, 2));
  runtime.Shutdown();

  EXPECT_EQ(log.total(), 3u);
  EXPECT_EQ(log.ResponseFor(100), "echo:split-payload");
  EXPECT_EQ(log.ResponseFor(101), "echo:first");
  EXPECT_EQ(log.ResponseFor(102), "echo:second");
  auto order = log.FlowOrder(0);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 100u);
  EXPECT_EQ(order[1], 101u);
  EXPECT_EQ(order[2], 102u);
}

TEST(RuntimeTest, PipelinedBurstsAreImplicitlyBatched) {
  // Back-to-back requests on one flow are claimed together under one ownership grab
  // (the §6.2 implicit batching); functionally: all complete, in order.
  CompletionLog log;
  Runtime runtime(SmallOptions(RuntimeMode::kZygos, /*workers=*/2, /*flows=*/1),
                  EchoHandler(), log.Handler());
  runtime.Start();
  std::string burst;
  for (uint64_t i = 0; i < 4; ++i) {
    EncodeMessage(Message{i, "burst"}, burst);
  }
  ASSERT_TRUE(runtime.InjectBytes(0, burst, 4));
  runtime.Shutdown();
  auto order = log.FlowOrder(0);
  ASSERT_EQ(order.size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(RuntimeTest, ShutdownWithNoTrafficIsClean) {
  Runtime runtime(SmallOptions(RuntimeMode::kZygos), EchoHandler(), nullptr);
  runtime.Start();
  runtime.Shutdown();
  EXPECT_EQ(runtime.Completed(), 0u);
}

TEST(RuntimeTest, ConcurrentInjectorsAreSafe) {
  CompletionLog log;
  Runtime runtime(SmallOptions(RuntimeMode::kZygos, /*workers=*/2, /*flows=*/64),
                  EchoHandler(), log.Handler());
  runtime.Start();
  constexpr int kInjectors = 3;
  constexpr uint64_t kPerInjector = 600;
  std::atomic<uint64_t> accepted{0};
  std::vector<std::thread> injectors;
  for (int t = 0; t < kInjectors; ++t) {
    injectors.emplace_back([&runtime, &accepted, t] {
      for (uint64_t i = 0; i < kPerInjector; ++i) {
        uint64_t id = static_cast<uint64_t>(t) * kPerInjector + i;
        if (runtime.Inject(id % 64, id, "x")) {
          accepted.fetch_add(1);
        }
      }
    });
  }
  for (auto& injector : injectors) {
    injector.join();
  }
  runtime.Shutdown();
  EXPECT_EQ(runtime.Completed(), accepted.load());
  EXPECT_EQ(log.total(), accepted.load());
}

TEST(RuntimeTest, LatencyCollectorRecordsEveryCompletion) {
  LatencyCollector collector;
  Runtime runtime(SmallOptions(RuntimeMode::kZygos, /*workers=*/2, /*flows=*/8),
                  EchoHandler(), collector.Handler());
  runtime.Start();
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(runtime.Inject(i % 8, i, "x"));
  }
  runtime.Shutdown();
  LatencyHistogram histogram = collector.Snapshot();
  EXPECT_EQ(histogram.Count(), 500u);
  EXPECT_GT(histogram.Mean(), 0.0);
  EXPECT_GE(histogram.P99(), histogram.P50());
}

TEST(RuntimeTest, RingBackpressureDropsAreCountedNotLost) {
  // A tiny ring with a stalled runtime (not started yet) must reject the overflow and
  // report it, mirroring NIC drop counters.
  RuntimeOptions options = SmallOptions(RuntimeMode::kZygos, /*workers=*/1, /*flows=*/1);
  options.ring_capacity = 8;
  Runtime runtime(options, EchoHandler(), nullptr);
  uint64_t accepted = 0;
  for (uint64_t i = 0; i < 64; ++i) {
    if (runtime.Inject(0, i, "x")) {
      accepted++;
    }
  }
  EXPECT_LE(accepted, 8u);
  EXPECT_EQ(runtime.NicDrops(), 64 - accepted);
  runtime.Start();
  runtime.Shutdown();
  EXPECT_EQ(runtime.Completed(), accepted);
}

// --- The transport seam: satellite guarantees that hold across backends ----------------

TEST(RuntimeTest, MutableRssRequiresQuiescence) {
  // Reprogramming before Start is the supported path...
  Runtime runtime(SmallOptions(RuntimeMode::kZygos), EchoHandler(), nullptr);
  runtime.mutable_rss().SetGroupCore(0, 1);
  // ...and doing it while the runtime is live must abort rather than race Inject.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Runtime live(SmallOptions(RuntimeMode::kZygos, /*workers=*/1), EchoHandler(),
                     nullptr);
        live.Start();
        live.mutable_rss();
      },
      "quiescent");
}

TEST(RuntimeTest, MutableRssUsableAgainAfterShutdown) {
  Runtime runtime(SmallOptions(RuntimeMode::kZygos, /*workers=*/2), EchoHandler(),
                  nullptr);
  runtime.Start();
  ASSERT_TRUE(runtime.Inject(0, 0, "x"));
  runtime.Shutdown();
  runtime.mutable_rss().SetGroupCore(0, 1);  // stopped == quiescent again
  EXPECT_EQ(runtime.mutable_rss().GroupCore(0), 1);
}

TEST(RuntimeTest, LatencyCollectorShardsMergeAcrossThreads) {
  // The sharded collector must lose nothing when many threads record concurrently
  // (the 8+ worker completion-callback pattern that used to serialize on one lock).
  LatencyCollector collector;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&collector] {
      for (int i = 0; i < kPerThread; ++i) {
        collector.Record(/*arrival=*/0);  // latency = now, always positive
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  LatencyHistogram merged = collector.Snapshot();
  EXPECT_EQ(merged.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_GT(merged.Mean(), 0.0);
}

TEST(RuntimeTest, OneByteSegmentsStayOrderedUnderStealingLoopback) {
  // §4.3 under the worst framing the transport seam allows: every byte of the probe
  // flow arrives as its own segment while bulk flows force the steal path (all flow
  // groups homed on core 0).
  RuntimeOptions options = SmallOptions(RuntimeMode::kZygos, /*workers=*/3, /*flows=*/8);
  CompletionLog log;
  Runtime runtime(options, BusyEchoHandler(), log.Handler());
  runtime.mutable_rss().SetIndirection(
      std::vector<int>(static_cast<size_t>(options.num_flow_groups), 0));
  runtime.Start();

  // Continuous bulk back-pressure (same single-hardware-thread rationale as
  // SkewedRssTriggersStealing): sustain a backlog on core 0 until a steal is claimed,
  // then dribble the probe frames byte-by-byte with bulk interleaved so stolen
  // executions keep overlapping half-received frames.
  uint64_t bulk_sent = 0;
  auto inject_bulk = [&runtime, &bulk_sent](int count) {
    for (int k = 0; k < count; ++k) {
      uint64_t flow = 1 + (bulk_sent % 7);
      if (runtime.Inject(flow, 1'000'000 + bulk_sent, "bulk")) {
        bulk_sent++;
      } else {
        std::this_thread::yield();  // ring full: keep the backlog, let workers run
      }
    }
  };
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(8);
  while (runtime.TotalShuffleStats().steals == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    inject_bulk(200);
  }
  constexpr uint64_t kProbeMessages = 60;
  uint64_t probe_sent = 0;
  for (uint64_t i = 0; i < kProbeMessages; ++i) {
    std::string frame;
    EncodeMessage(Message{probe_sent, "probe" + std::to_string(probe_sent)}, frame);
    for (size_t b = 0; b < frame.size(); ++b) {
      // Only the frame's last byte completes a message (Shutdown accounting).
      uint64_t completes = (b + 1 == frame.size()) ? 1 : 0;
      while (!runtime.InjectBytes(0, frame.substr(b, 1), completes)) {
        std::this_thread::yield();
      }
    }
    probe_sent++;
    inject_bulk(20);  // keep the steal pressure alive across the probe
  }
  runtime.Shutdown();

  auto order = log.FlowOrder(0);
  ASSERT_EQ(order.size(), probe_sent);
  for (uint64_t i = 0; i < probe_sent; ++i) {
    EXPECT_EQ(order[i], i) << "probe response " << i << " out of order";
    EXPECT_EQ(log.ResponseFor(i), "probe" + std::to_string(i));
  }
  EXPECT_GT(runtime.TotalStats().stolen_events, 0u)
      << "skew produced no steals; the ordering guarantee was not stressed";
}

// --- The allocation-free data plane -----------------------------------------------------

TEST(RuntimeTest, ZeroCopyHandlerServesRequests) {
  // The ViewHandler contract end to end: request arrives as a view into pooled RX
  // memory, response is written straight into the pooled TX frame.
  CompletionLog log;
  ViewHandler handler = [](uint64_t, std::string_view request, ResponseBuilder& out) {
    out.Append("echo:");
    out.Append(request);
  };
  Runtime runtime(SmallOptions(RuntimeMode::kZygos), std::move(handler), log.Handler());
  runtime.Start();
  constexpr uint64_t kRequests = 1000;
  for (uint64_t i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(runtime.Inject(i % 16, i, "v" + std::to_string(i)));
  }
  runtime.Shutdown();
  EXPECT_EQ(runtime.Completed(), kRequests);
  EXPECT_EQ(log.ResponseFor(3), "echo:v3");
  EXPECT_EQ(log.ResponseFor(kRequests - 1), "echo:v" + std::to_string(kRequests - 1));
  // The pool counters flowed into WorkerStats (workers allocate TX frames).
  EXPECT_GT(runtime.TotalStats().pool_hits + runtime.TotalStats().pool_misses, 0u);
}

TEST(RuntimeTest, SteadyStateEchoPerformsZeroPoolMissesPerRequest) {
  // THE regression gate for this refactor: after warmup, the loopback echo workload
  // must serve requests without per-request heap allocations in the buffer
  // subsystem — every RX segment, reassembly buffer and TX frame comes from a pool
  // freelist. (The strictly-deterministic zero-allocs/op assertion lives in
  // bench/micro_dataplane, which CI gates; this multi-threaded variant bounds the
  // miss RATE instead, because a pool's working set is its max in-flight depth and
  // which worker's pool serves a request shifts with scheduling — a descheduled
  // worker or a fresh steal legitimately grows a pool once, which is warmup, not a
  // leak-per-request.)
  ViewHandler handler = [](uint64_t, std::string_view request, ResponseBuilder& out) {
    out.Append(request);
  };
  Runtime runtime(SmallOptions(RuntimeMode::kZygos, /*workers=*/2, /*flows=*/16),
                  std::move(handler), nullptr);
  runtime.Start();
  uint64_t sent = 0;
  // Closed-ish loop with a bounded in-flight window, so the pools' working sets
  // reach their stationary size during warmup instead of depending on how far the
  // injector outruns the workers on a loaded host.
  constexpr uint64_t kWindow = 64;
  auto run_burst = [&](int requests) {
    for (int i = 0; i < requests; ++i) {
      while (!runtime.Inject(sent % 16, sent, "steady-state-payload")) {
        std::this_thread::yield();
      }
      sent++;
      while (sent - runtime.Completed() > kWindow) {
        std::this_thread::yield();
      }
    }
    while (runtime.Completed() < sent) {
      std::this_thread::yield();
    }
  };
  run_burst(3000);  // warmup: pools grow to the workload's working set
  BufferPoolStats warmed = BufferPool::GlobalSnapshot();
  constexpr int kMeasured = 3000;
  run_burst(kMeasured);
  BufferPoolStats after = BufferPool::GlobalSnapshot();
  runtime.Shutdown();
  // A per-request allocation regression costs >= kMeasured misses (2 buffers move
  // per echo, so really >= 2x); residual pool growth is bounded by a few in-flight
  // windows. kMeasured/10 sits an order of magnitude below the former and well
  // above the latter.
  uint64_t miss_delta = after.misses() - warmed.misses();
  EXPECT_LT(miss_delta, static_cast<uint64_t>(kMeasured) / 10)
      << "the steady-state echo path allocates per request (" << miss_delta
      << " misses over " << kMeasured << " requests)";
  // And the work actually went through the pools, not around them.
  EXPECT_GE(after.freelist_hits - warmed.freelist_hits,
            static_cast<uint64_t>(kMeasured) * 2 - kMeasured / 10)
      << "fewer pooled allocations than RX+TX buffers for the burst";
}

// --- TcpTransport: the runtime through the Transport seam on real sockets --------------

TEST(RuntimeTcpTest, EchoRoundTripOverRealSockets) {
  TcpTransport* transport = nullptr;
  auto runtime = MakeTcpRuntime(SmallOptions(RuntimeMode::kZygos, /*workers=*/2),
                                BusyEchoHandler(/*spins=*/0), nullptr, &transport);
  runtime->Start();
  ASSERT_GT(transport->port(), 0);

  constexpr int kConnections = 3;
  constexpr uint64_t kRequests = 50;
  std::vector<std::unique_ptr<TestTcpClient>> clients;
  for (int c = 0; c < kConnections; ++c) {
    clients.push_back(std::make_unique<TestTcpClient>(transport->port()));
    ASSERT_TRUE(clients.back()->ok()) << "connect failed";
  }
  for (auto& client : clients) {
    EXPECT_TRUE(RunEchoExchange(*client, kRequests, /*window=*/8, "req"));
  }
  clients.clear();  // hang up before shutdown
  runtime->Shutdown();
  EXPECT_EQ(runtime->Completed(), kConnections * kRequests);
  EXPECT_EQ(runtime->Accepted(), kConnections * kRequests);
  EXPECT_EQ(transport->AcceptedConnections(), static_cast<uint64_t>(kConnections));
}

TEST(RuntimeTcpTest, SkewedRssStealsAndShipsRemoteSyscallsOverTcp) {
  // The acceptance bar for the transport refactor: with every connection homed on
  // core 0, stealing, remote batched syscalls and doorbells must all remain
  // observable in WorkerStats when the traffic arrives over real TCP.
  RuntimeOptions options = SmallOptions(RuntimeMode::kZygos, /*workers=*/4);
  TcpTransport* transport = nullptr;
  auto runtime =
      MakeTcpRuntime(options, BusyEchoHandler(), nullptr, &transport);
  runtime->mutable_rss().SetIndirection(
      std::vector<int>(static_cast<size_t>(options.num_flow_groups), 0));
  runtime->Start();

  constexpr int kConnections = 8;
  constexpr uint64_t kPerConnection = 250;
  std::atomic<int> failures{0};
  uint64_t total_requests = 0;
  // Rounds, not one shot: on a loaded single-hardware-thread host one round can be
  // served run-to-completion by core 0 alone; each round is a fresh chance for the
  // thieves to interleave. A broken steal path still fails after the bounded retries.
  for (int round = 0; round < 10 && runtime->TotalStats().stolen_events == 0; ++round) {
    std::vector<std::thread> drivers;
    for (int c = 0; c < kConnections; ++c) {
      drivers.emplace_back([&, c] {
        TestTcpClient client(transport->port());
        if (!client.ok() ||
            !RunEchoExchange(client, kPerConnection, /*window=*/8,
                             "c" + std::to_string(c) + "-")) {
          failures.fetch_add(1);
        }
      });
    }
    for (auto& driver : drivers) {
      driver.join();
    }
    total_requests += kConnections * kPerConnection;
  }
  EXPECT_EQ(failures.load(), 0);
  runtime->Shutdown();

  WorkerStats total = runtime->TotalStats();
  EXPECT_EQ(total.app_events, total_requests);
  EXPECT_GT(total.stolen_events, 0u) << "no steals despite a fully skewed layout";
  EXPECT_GT(runtime->TotalShuffleStats().steals, 0u);
  EXPECT_GT(runtime->StatsFor(0).remote_syscalls, 0u)
      << "stolen responses were not shipped home";
  EXPECT_GT(total.doorbells_sent, 0u);
  // Every connection was homed on core 0: remote cores never polled segments.
  EXPECT_EQ(runtime->StatsFor(0).rx_segments, total.rx_segments);
}

TEST(RuntimeTcpTest, OneByteWireSegmentsStayOrderedUnderStealing) {
  // The §4.3 test at the real socket boundary: one probe connection dribbles its
  // requests a byte per send() while bulk connections keep the (skewed) home core
  // saturated, so stolen executions interleave with half-received frames.
  RuntimeOptions options = SmallOptions(RuntimeMode::kZygos, /*workers=*/3);
  TcpTransport* transport = nullptr;
  auto runtime = MakeTcpRuntime(options, BusyEchoHandler(), nullptr, &transport);
  runtime->mutable_rss().SetIndirection(
      std::vector<int>(static_cast<size_t>(options.num_flow_groups), 0));
  runtime->Start();

  std::atomic<int> failures{0};
  std::atomic<bool> stop_bulk{false};
  std::vector<std::thread> bulk;
  for (int c = 0; c < 3; ++c) {
    bulk.emplace_back([&, c] {
      TestTcpClient client(transport->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      uint64_t id = 0;
      while (!stop_bulk.load(std::memory_order_acquire)) {
        // Bursts of 4 pipelined requests keep the home core's shuffle queue deep
        // enough that idle cores must steal.
        constexpr uint64_t kBurst = 4;
        for (uint64_t k = 0; k < kBurst; ++k) {
          std::string payload = "b" + std::to_string(c) + "-" + std::to_string(id + k);
          if (!client.SendRequest(id + k, payload)) {
            failures.fetch_add(1);
            return;
          }
        }
        for (uint64_t k = 0; k < kBurst; ++k) {
          Message response;
          if (!client.RecvMessage(&response) || response.request_id != id + k) {
            failures.fetch_add(1);
            return;
          }
        }
        id += kBurst;
      }
    });
  }

  constexpr uint64_t kProbePerRound = 40;
  {
    TestTcpClient probe(transport->port());
    ASSERT_TRUE(probe.ok());
    uint64_t sent = 0;
    uint64_t received = 0;
    // Probe in rounds (same connection, continuing ids) until a steal has actually
    // interleaved with the dribbled frames — one round can be served by core 0 alone
    // on a loaded single-hardware-thread host.
    for (int round = 0; round < 10; ++round) {
      uint64_t target = received + kProbePerRound;
      while (received < target) {
        // Window of 4 in-flight, every frame split into 1-byte wire segments.
        while (sent < target && sent - received < 4) {
          ASSERT_TRUE(probe.SendRequestByteByByte(sent, "p" + std::to_string(sent)));
          sent++;
        }
        Message response;
        ASSERT_TRUE(probe.RecvMessage(&response));
        EXPECT_EQ(response.request_id, received) << "probe response out of order";
        EXPECT_EQ(response.payload, "p" + std::to_string(received));
        received++;
      }
      if (runtime->TotalStats().stolen_events > 0) {
        break;
      }
    }
  }
  stop_bulk.store(true, std::memory_order_release);
  for (auto& thread : bulk) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  runtime->Shutdown();
  EXPECT_GT(runtime->TotalStats().stolen_events, 0u)
      << "skew produced no steals; the wire-segmentation ordering was not stressed";
}

TEST(RuntimeTcpTest, MalformedFrameSeversOnlyTheOffendingConnection) {
  // A frame whose length field exceeds FrameParser::kMaxPayload poisons the parser;
  // the runtime must drop that connection at the transport (remote garbage cannot pin
  // a core or hold a socket open forever) while other connections keep being served.
  TcpTransport* transport = nullptr;
  auto runtime = MakeTcpRuntime(SmallOptions(RuntimeMode::kZygos, /*workers=*/2),
                                BusyEchoHandler(/*spins=*/0), nullptr, &transport);
  runtime->Start();

  TestTcpClient good(transport->port());
  TestTcpClient bad(transport->port());
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(bad.ok());
  EXPECT_TRUE(RunEchoExchange(good, /*requests=*/5, /*window=*/2, "g"));

  std::string poison(16, '\xFF');  // length field 0xFFFFFFFF >> kMaxPayload
  ASSERT_TRUE(bad.SendBytes(poison.data(), poison.size()));
  Message never;
  EXPECT_FALSE(bad.RecvMessage(&never)) << "poisoned connection must be severed";

  EXPECT_TRUE(RunEchoExchange(good, /*requests=*/5, /*window=*/2, "h"))
      << "healthy connection must survive a neighbour's garbage";
  runtime->Shutdown();
  EXPECT_GT(runtime->NicDrops(), 0u) << "the severance is accounted as a drop";
}

TEST(RuntimeTcpTest, RefusesConnectionsBeyondFlowCap) {
  // max_flows caps *concurrent* connections: while both live connections hold their
  // ids, a third must be refused (closed at accept) instead of overrunning the
  // runtime's table — and the refusal lands in CapacityRefusals(), not StallDrops().
  RuntimeOptions options = SmallOptions(RuntimeMode::kZygos, /*workers=*/2);
  options.num_flows = 2;
  options.max_flows = 2;
  auto transport = std::make_unique<TcpTransport>(TcpOptionsFor(options));
  TcpTransport* raw = transport.get();
  Runtime runtime(options, std::move(transport), BusyEchoHandler(/*spins=*/0));
  runtime.Start();

  TestTcpClient first(raw->port());
  TestTcpClient second(raw->port());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(RunEchoExchange(first, /*requests=*/5, /*window=*/2, "a"));
  EXPECT_TRUE(RunEchoExchange(second, /*requests=*/5, /*window=*/2, "b"));

  TestTcpClient third(raw->port());
  ASSERT_TRUE(third.ok()) << "refusal happens after accept, so connect succeeds";
  third.SendRequest(0, "x");  // may or may not reach the closed socket
  Message never;
  EXPECT_FALSE(third.RecvMessage(&never)) << "capped connection must be closed unserved";
  runtime.Shutdown();
  EXPECT_EQ(raw->AcceptedConnections(), 2u);
  EXPECT_GT(runtime.NicDrops(), 0u) << "the refusal is accounted as a drop";
  EXPECT_GE(raw->CapacityRefusals(), 1u);
  EXPECT_EQ(raw->StallDrops(), 0u);
}

TEST(RuntimeTcpTest, PartitionedModeServesTcpWithoutStealing) {
  RuntimeOptions options = SmallOptions(RuntimeMode::kPartitioned, /*workers=*/2);
  TcpTransport* transport = nullptr;
  auto runtime =
      MakeTcpRuntime(options, BusyEchoHandler(/*spins=*/0), nullptr, &transport);
  runtime->Start();
  {
    TestTcpClient client(transport->port());
    ASSERT_TRUE(client.ok());
    EXPECT_TRUE(RunEchoExchange(client, /*requests=*/200, /*window=*/4, "p"));
  }
  runtime->Shutdown();
  WorkerStats total = runtime->TotalStats();
  EXPECT_EQ(total.app_events, 200u);
  EXPECT_EQ(total.stolen_events, 0u);
  EXPECT_EQ(runtime->TotalShuffleStats().steals, 0u);
}

// --- Connection lifecycle: control events, slot recycling, teardown-vs-steal ----------

// Builds a Runtime on an explicit LoopbackTransport so tests can drive the
// open/close control surface directly.
std::unique_ptr<Runtime> MakeLoopbackRuntime(RuntimeOptions options,
                                             ViewHandler handler,
                                             CompletionHandler on_complete,
                                             LoopbackTransport** transport_out) {
  auto transport = std::make_unique<LoopbackTransport>(
      options.num_workers, options.num_flow_groups, options.ring_capacity);
  *transport_out = transport.get();
  transport->set_on_complete(std::move(on_complete));
  return std::make_unique<Runtime>(options, std::move(transport), std::move(handler));
}

// Polls a racy-but-safe runtime counter until `predicate` holds or the deadline
// expires; returns whether it held. Never asserts timing, only uses the deadline as
// a failure bound.
template <typename Predicate>
bool WaitFor(Predicate predicate, std::chrono::seconds deadline = std::chrono::seconds(8)) {
  auto until = std::chrono::steady_clock::now() + deadline;
  while (!predicate()) {
    if (std::chrono::steady_clock::now() >= until) {
      return predicate();
    }
    std::this_thread::yield();
  }
  return true;
}

TEST(RuntimeTest, TcpOptionsForDerivesFlowCapFromRuntimeOptions) {
  // The single source of truth for flow capacity: transport geometry derives from
  // the runtime options, so the transport id cap always equals the table size.
  RuntimeOptions options;
  options.num_workers = 3;
  options.num_flow_groups = 64;
  options.num_flows = 10;
  options.max_flows = 0;
  TcpTransportOptions tcp = TcpOptionsFor(options, /*port=*/7777);
  EXPECT_EQ(tcp.num_queues, 3);
  EXPECT_EQ(tcp.num_flow_groups, 64);
  EXPECT_EQ(tcp.port, 7777);
  EXPECT_EQ(tcp.max_flows, ResolvedMaxFlows(options));
  EXPECT_EQ(tcp.max_flows, 4096u);  // the historical default floor
  options.max_flows = 5;  // explicit cap below num_flows: the table still fits them
  EXPECT_EQ(ResolvedMaxFlows(options), 10u);
  options.max_flows = 1u << 15;
  EXPECT_EQ(TcpOptionsFor(options).max_flows, 1u << 15);
}

TEST(RuntimeTest, LoopbackControlEventsBindAndRecycleSlots) {
  RuntimeOptions options = SmallOptions(RuntimeMode::kZygos, /*workers=*/2, /*flows=*/8);
  LoopbackTransport* loopback = nullptr;
  CompletionLog log;
  auto runtime = MakeLoopbackRuntime(
      options, WrapStringHandler(EchoHandler()), log.Handler(), &loopback);
  runtime->Start();

  ASSERT_TRUE(loopback->OpenFlow(5));
  ASSERT_TRUE(WaitFor([&] { return runtime->TotalStats().flows_opened == 1; }));
  EXPECT_EQ(runtime->OpenFlows(), 1u);
  EXPECT_EQ(runtime->FlowGeneration(5), 0u);

  ASSERT_TRUE(runtime->Inject(5, 1, "ping"));
  ASSERT_TRUE(WaitFor([&] { return runtime->Completed() == 1; }));
  ASSERT_TRUE(loopback->CloseFlowFromClient(5));
  ASSERT_TRUE(WaitFor([&] { return runtime->TotalStats().flows_recycled == 1; }));
  EXPECT_EQ(runtime->OpenFlows(), 0u);
  EXPECT_EQ(runtime->PeakOpenFlows(), 1u);
  EXPECT_EQ(runtime->FlowGeneration(5), 1u);
  WorkerStats total = runtime->TotalStats();
  EXPECT_EQ(total.flows_opened, 1u);
  EXPECT_EQ(total.flows_closed, 1u);
  runtime->Shutdown();
  EXPECT_EQ(log.ResponseFor(1), "echo:ping");
}

TEST(RuntimeTest, SlotRecycleResetsParserStateForReusedFlowId) {
  // CloseFlow-then-reuse of the same slot must round-trip fresh parser state: the
  // predecessor dies mid-frame, and without the in-place FrameParser reset its
  // stale half-header would corrupt the reincarnated flow's first frame.
  RuntimeOptions options = SmallOptions(RuntimeMode::kZygos, /*workers=*/2, /*flows=*/4);
  LoopbackTransport* loopback = nullptr;
  CompletionLog log;
  auto runtime = MakeLoopbackRuntime(
      options, WrapStringHandler(EchoHandler()), log.Handler(), &loopback);
  runtime->Start();

  std::string frame;
  EncodeMessage(Message{7, "never-completed"}, frame);
  // Half a frame (0 completed messages): the parser now holds dangling bytes.
  ASSERT_TRUE(runtime->InjectBytes(0, frame.substr(0, 6), 0));
  ASSERT_TRUE(WaitFor([&] { return runtime->TotalStats().rx_segments >= 1; }));
  ASSERT_TRUE(loopback->CloseFlowFromClient(0));
  ASSERT_TRUE(WaitFor([&] { return runtime->TotalStats().flows_recycled == 1; }));
  EXPECT_EQ(runtime->FlowGeneration(0), 1u);

  // Reincarnated flow 0: a fresh complete frame must parse cleanly from byte 0.
  ASSERT_TRUE(runtime->Inject(0, 42, "fresh"));
  ASSERT_TRUE(WaitFor([&] { return runtime->Completed() >= 1; }));
  runtime->Shutdown();
  EXPECT_EQ(log.ResponseFor(42), "echo:fresh");
  EXPECT_EQ(runtime->Completed(), 1u);
  WorkerStats total = runtime->TotalStats();
  EXPECT_EQ(total.flows_opened, 2u) << "lazy bind + rebind after recycle";
  EXPECT_EQ(total.flows_recycled, 1u);
}

TEST(RuntimeTest, CloseWhileExecutingNeverRecyclesEarly) {
  // The §4.3 ownership discipline extended to teardown: while ANY core (home or a
  // thief) is executing the connection, a close must defer recycling — asserted via
  // the slot's generation tag, which may only bump after the in-flight request
  // completes.
  RuntimeOptions options = SmallOptions(RuntimeMode::kZygos, /*workers=*/2, /*flows=*/8);
  LoopbackTransport* loopback = nullptr;
  CompletionLog log;
  std::atomic<bool> gate{false};
  std::atomic<bool> entered{false};
  ViewHandler handler = [&](uint64_t, std::string_view request, ResponseBuilder& out) {
    entered.store(true, std::memory_order_release);
    while (!gate.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    out.Append(request);
  };
  auto runtime =
      MakeLoopbackRuntime(options, std::move(handler), log.Handler(), &loopback);
  runtime->Start();

  ASSERT_TRUE(runtime->Inject(0, 1, "held"));
  ASSERT_TRUE(WaitFor([&] { return entered.load(std::memory_order_acquire); }));
  uint32_t generation_before = runtime->FlowGeneration(0);
  ASSERT_TRUE(loopback->CloseFlowFromClient(0));
  // Give the close a bounded chance to be processed (it is whenever the home core is
  // not itself the blocked executor). Whether or not it lands, recycling must not.
  WaitFor([&] { return runtime->TotalStats().flows_closed == 1; },
          std::chrono::seconds(1));
  EXPECT_EQ(runtime->TotalStats().flows_recycled, 0u)
      << "slot recycled while its connection was being executed";
  EXPECT_EQ(runtime->FlowGeneration(0), generation_before);

  gate.store(true, std::memory_order_release);
  ASSERT_TRUE(WaitFor([&] { return runtime->TotalStats().flows_recycled == 1; }));
  EXPECT_EQ(runtime->FlowGeneration(0), generation_before + 1);
  runtime->Shutdown();
  EXPECT_EQ(log.total(), 1u) << "the in-flight request completed, not dropped";
  EXPECT_EQ(runtime->OpenFlows(), 0u);
}

TEST(RuntimeTcpTest, StalledPeerIsDroppedAfterConfigurableDeadline) {
  // A peer that stops reading must cost its home core at most the configured stall
  // deadline, land in StallDrops() (distinct from capacity refusals), and have its
  // connection torn down like any other close.
  RuntimeOptions options = SmallOptions(RuntimeMode::kZygos, /*workers=*/2);
  TcpTransportOptions tcp = TcpOptionsFor(options);
  tcp.stall_drop_deadline = 30 * kMillisecond;  // keep the test fast
  auto transport = std::make_unique<TcpTransport>(tcp);
  TcpTransport* raw = transport.get();
  Runtime runtime(options, std::move(transport), BusyEchoHandler(/*spins=*/0));
  runtime.Start();

  {
    // Clamped receive window + never reading: the server can park at most
    // rcvbuf + its own (autotuned, <= 4 MB) send buffer before TX hits EAGAIN.
    TestTcpClient deaf(raw->port(), /*rcvbuf=*/8192);
    ASSERT_TRUE(deaf.ok());
    const std::string big(8192, 'z');
    for (uint64_t i = 0; i < 800; ++i) {  // ~6.4 MB of echoed responses
      if (!deaf.SendRequest(i, big)) {
        break;  // server severed us mid-send: exactly the behaviour under test
      }
      if (raw->StallDrops() >= 1) {
        break;
      }
    }
    ASSERT_TRUE(WaitFor([&] { return raw->StallDrops() >= 1; }))
        << "TX to a deaf peer never tripped the stall deadline";
  }
  runtime.Shutdown();
  EXPECT_GE(raw->StallDrops(), 1u);
  EXPECT_EQ(raw->CapacityRefusals(), 0u);
  EXPECT_GE(runtime.TotalStats().flows_closed, 1u)
      << "the stall drop must tear the connection down";
}

TEST(RuntimeTcpTest, RecyclesFlowIdsToServeMoreConnectionsThanTableCapacity) {
  // THE churn proof: a table of 4 slots serves 12 distinct connections with zero
  // capacity refusals, flat occupancy, and — after the table's worth of warmup —
  // zero pool misses per request (allocation-free recycling).
  RuntimeOptions options = SmallOptions(RuntimeMode::kZygos, /*workers=*/2);
  options.num_flows = 4;
  options.max_flows = 4;
  auto transport = std::make_unique<TcpTransport>(TcpOptionsFor(options));
  TcpTransport* raw = transport.get();
  Runtime runtime(options, std::move(transport), BusyEchoHandler(/*spins=*/0));
  runtime.Start();

  constexpr int kClients = 12;
  constexpr uint64_t kRequestsPerClient = 20;
  uint64_t warmed_pool_misses = 0;
  for (int c = 0; c < kClients; ++c) {
    {
      TestTcpClient client(raw->port());
      ASSERT_TRUE(client.ok()) << "client " << c << " refused";
      EXPECT_TRUE(RunEchoExchange(client, kRequestsPerClient, /*window=*/4, "c"));
    }  // hangup
    // The table has zero spare ids, so wait for this teardown to finish before the
    // next connect — otherwise the next accept would be (correctly) refused.
    ASSERT_TRUE(WaitFor([&] {
      return runtime.TotalStats().flows_recycled == static_cast<uint64_t>(c) + 1;
    })) << "teardown " << c << " never recycled the slot";
    if (c == 3) {
      // One table's worth of churn warms every pool this workload touches.
      warmed_pool_misses = runtime.TotalStats().pool_misses;
    }
  }
  runtime.Shutdown();

  EXPECT_EQ(raw->AcceptedConnections(), static_cast<uint64_t>(kClients));
  EXPECT_EQ(raw->CapacityRefusals(), 0u);
  EXPECT_EQ(runtime.Completed(), kClients * kRequestsPerClient);
  WorkerStats total = runtime.TotalStats();
  EXPECT_EQ(total.flows_opened, static_cast<uint64_t>(kClients));
  EXPECT_EQ(total.flows_closed, static_cast<uint64_t>(kClients));
  EXPECT_EQ(total.flows_recycled, static_cast<uint64_t>(kClients));
  EXPECT_EQ(runtime.OpenFlows(), 0u);
  EXPECT_LE(runtime.PeakOpenFlows(), 4u) << "occupancy exceeded the table";
  // An allocation-per-recycled-connection regression costs >= 8 misses (the 8
  // clients after the snapshot); a stray slab from a cold pool (e.g. the idle
  // worker's first steal landing after warmup) costs 1-2. Bound in between.
  EXPECT_LE(total.pool_misses - warmed_pool_misses, 4u)
      << "connection recycling allocated from the heap after warmup";
  // Every recycle bumped exactly one slot generation.
  uint64_t generation_sum = 0;
  for (uint64_t flow = 0; flow < 4; ++flow) {
    generation_sum += runtime.FlowGeneration(flow);
  }
  EXPECT_EQ(generation_sum, static_cast<uint64_t>(kClients));
}

TEST(RuntimeTcpTest, ChurnUnderSkewedRssWithStealingTearsDownCleanly) {
  // Teardown races: connections churn while every flow is homed on core 0 and busy
  // handlers force thieves to claim them. A flow closed while stolen must complete
  // or drop cleanly and never recycle early — violations surface as lost responses
  // (failures), unbalanced lifecycle counters, or ASan reports.
  RuntimeOptions options = SmallOptions(RuntimeMode::kZygos, /*workers=*/4);
  options.num_flows = 16;
  options.max_flows = 16;
  TcpTransport* transport = nullptr;
  auto runtime = MakeTcpRuntime(options, BusyEchoHandler(), nullptr, &transport);
  runtime->mutable_rss().SetIndirection(
      std::vector<int>(static_cast<size_t>(options.num_flow_groups), 0));
  runtime->Start();

  constexpr int kConnsPerRound = 6;
  constexpr uint64_t kPerConnection = 120;
  std::atomic<int> failures{0};
  int rounds = 0;
  // At least 3 rounds so lifetime connections (18) exceed the 16-slot table; keep
  // going (bounded) until the steal path has actually interleaved with the churn.
  for (; rounds < 10 &&
         (rounds < 3 || runtime->TotalStats().stolen_events == 0);
       ++rounds) {
    std::vector<std::thread> drivers;
    for (int c = 0; c < kConnsPerRound; ++c) {
      drivers.emplace_back([&, c] {
        TestTcpClient client(transport->port());
        if (!client.ok() ||
            !RunEchoExchange(client, kPerConnection, /*window=*/8,
                             "r" + std::to_string(c) + "-")) {
          failures.fetch_add(1);
        }
      });
    }
    for (auto& driver : drivers) {
      driver.join();
    }
    // Let this round's teardowns retire before the next round reuses the ids.
    ASSERT_TRUE(WaitFor([&] {
      return runtime->TotalStats().flows_recycled ==
             static_cast<uint64_t>(rounds + 1) * kConnsPerRound;
    })) << "round " << rounds << " teardowns never quiesced";
  }
  EXPECT_EQ(failures.load(), 0);
  runtime->Shutdown();

  const auto total_conns = static_cast<uint64_t>(rounds) * kConnsPerRound;
  WorkerStats total = runtime->TotalStats();
  EXPECT_EQ(total.app_events, total_conns * kPerConnection);
  EXPECT_EQ(total.events_refused, 0u) << "clients drained before hangup";
  EXPECT_GT(total.stolen_events, 0u) << "no steals despite a fully skewed layout";
  EXPECT_EQ(transport->AcceptedConnections(), total_conns);
  EXPECT_GT(total_conns, 16u) << "churn never exceeded the table capacity";
  EXPECT_EQ(transport->CapacityRefusals(), 0u);
  EXPECT_EQ(total.flows_opened, total_conns);
  EXPECT_EQ(total.flows_closed, total_conns);
  EXPECT_EQ(total.flows_recycled, total_conns);
  EXPECT_EQ(runtime->OpenFlows(), 0u);
  EXPECT_LE(runtime->PeakOpenFlows(), 16u);
  uint64_t generation_sum = 0;
  for (uint64_t flow = 0; flow < 16; ++flow) {
    generation_sum += runtime->FlowGeneration(flow);
  }
  EXPECT_EQ(generation_sum, total_conns)
      << "slot generations disagree with completed teardowns";
}

// --- Parameterized sweep: every mode x worker count upholds the core guarantees --------

using RuntimeSweepParam = std::tuple<RuntimeMode, int>;  // (mode, workers)

class RuntimeSweep : public ::testing::TestWithParam<RuntimeSweepParam> {};

TEST_P(RuntimeSweep, CompletionAndPerFlowOrderHold) {
  auto [mode, workers] = GetParam();
  CompletionLog log;
  Runtime runtime(SmallOptions(mode, workers, /*flows=*/8), EchoHandler(), log.Handler());
  runtime.Start();
  constexpr uint64_t kPerFlow = 150;
  for (uint64_t i = 0; i < kPerFlow; ++i) {
    for (uint64_t flow = 0; flow < 8; ++flow) {
      ASSERT_TRUE(runtime.Inject(flow, flow * kPerFlow + i, "x"));
    }
  }
  runtime.Shutdown();
  EXPECT_EQ(runtime.Completed(), 8 * kPerFlow);
  for (uint64_t flow = 0; flow < 8; ++flow) {
    auto order = log.FlowOrder(flow);
    ASSERT_EQ(order.size(), kPerFlow);
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()))
        << "mode=" << static_cast<int>(mode) << " workers=" << workers
        << " flow=" << flow;
  }
  if (mode == RuntimeMode::kPartitioned) {
    EXPECT_EQ(runtime.TotalStats().stolen_events, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndWorkerCounts, RuntimeSweep,
    ::testing::Combine(::testing::Values(RuntimeMode::kZygos, RuntimeMode::kPartitioned),
                       ::testing::Values(1, 2, 4, 6)),
    [](const ::testing::TestParamInfo<RuntimeSweepParam>& info) {
      return std::string(std::get<0>(info.param) == RuntimeMode::kZygos ? "zygos"
                                                                        : "partitioned") +
             "_w" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace zygos
