// Transport conformance: one parameterized suite drives the SAME lifecycle,
// ordering, sever, stall-drop and slot-recycling assertions through every Transport
// backend — LoopbackTransport (in-process rings), TcpTransport (epoll sockets) and
// UringTransport (batched io_uring) — so a new backend cannot pass by implementing a
// private dialect of the contract (src/runtime/transport.h). The uring backend is
// instantiated across its full feature matrix (multishot × sqpoll × send_zc,
// ISSUE 10): every rung combination must satisfy the identical contract, including
// severance with a standing multishot SQE in flight. The uring instantiations skip
// themselves via the runtime capability probe when the kernel/sandbox denies
// io_uring_setup or a requested rung (ci.sh surfaces the skip); everything else must
// pass everywhere. A dedicated forced-fallback test pins byte-identical echo when
// every rung is explicitly denied.
//
// All assertions are functional (counts, orderings, invariants), never timing-based —
// the host may have a single hardware thread.
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/net/message.h"
#include "src/runtime/loopback_transport.h"
#include "src/runtime/runtime.h"
#include "src/runtime/tcp_transport.h"
#include "src/runtime/uring_transport.h"

namespace zygos {
namespace {

enum class Backend { kLoopback, kTcp, kUring };

// One instantiation of the suite: a backend plus (for uring) a requested rung set
// from the ISSUE 10 feature ladder. The contract must hold for every combination.
struct BackendVariant {
  Backend backend;
  bool multishot = false;
  bool sqpoll = false;
  bool send_zc = false;
  const char* name = "?";
};

std::vector<BackendVariant> AllVariants() {
  return {
      {Backend::kLoopback, false, false, false, "loopback"},
      {Backend::kTcp, false, false, false, "tcp"},
      // Full uring feature matrix: rung 0, each rung alone, each pair, all three.
      {Backend::kUring, false, false, false, "uring"},
      {Backend::kUring, true, false, false, "uring_ms"},
      {Backend::kUring, false, true, false, "uring_sqp"},
      {Backend::kUring, false, false, true, "uring_zc"},
      {Backend::kUring, true, true, false, "uring_ms_sqp"},
      {Backend::kUring, true, false, true, "uring_ms_zc"},
      {Backend::kUring, false, true, true, "uring_sqp_zc"},
      {Backend::kUring, true, true, true, "uring_ms_sqp_zc"},
  };
}

RequestHandler EchoHandler() {
  return [](uint64_t flow_id, const std::string& request) {
    (void)flow_id;
    return "echo:" + request;
  };
}

class CompletionLog {
 public:
  CompletionHandler Handler() {
    return [this](uint64_t flow_id, uint64_t request_id, std::string_view response,
                  Nanos arrival, bool shed) {
      (void)arrival;
      (void)shed;
      std::lock_guard<std::mutex> guard(mutex_);
      per_flow_[flow_id].push_back(request_id);
      responses_[request_id] = std::string(response);
      total_++;
    };
  }
  std::vector<uint64_t> FlowOrder(uint64_t flow_id) {
    std::lock_guard<std::mutex> guard(mutex_);
    return per_flow_[flow_id];
  }
  std::string ResponseFor(uint64_t request_id) {
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = responses_.find(request_id);
    return it == responses_.end() ? "" : it->second;
  }
  uint64_t total() {
    std::lock_guard<std::mutex> guard(mutex_);
    return total_;
  }

 private:
  std::mutex mutex_;
  std::map<uint64_t, std::vector<uint64_t>> per_flow_;
  std::map<uint64_t, std::string> responses_;
  uint64_t total_ = 0;
};

template <typename Predicate>
bool WaitFor(Predicate predicate,
             std::chrono::seconds deadline = std::chrono::seconds(8)) {
  auto until = std::chrono::steady_clock::now() + deadline;
  while (!predicate()) {
    if (std::chrono::steady_clock::now() >= until) {
      return predicate();
    }
    std::this_thread::yield();
  }
  return true;
}

// Minimal blocking framed-RPC client for the socket backends (same shape as the
// runtime_test one; `rcvbuf` > 0 clamps the receive window for the stall test).
class TestTcpClient {
 public:
  explicit TestTcpClient(uint16_t port, int rcvbuf = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (rcvbuf > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  ~TestTcpClient() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }
  TestTcpClient(const TestTcpClient&) = delete;
  TestTcpClient& operator=(const TestTcpClient&) = delete;

  bool ok() const { return fd_ >= 0; }

  bool SendBytes(const char* data, size_t len) {
    size_t sent = 0;
    while (sent < len) {
      ssize_t w = ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
      if (w < 0 && errno == EINTR) {
        continue;
      }
      if (w <= 0) {
        return false;
      }
      sent += static_cast<size_t>(w);
    }
    return true;
  }
  bool SendRequest(uint64_t request_id, const std::string& payload) {
    std::string frame;
    EncodeMessage(request_id, payload, frame);
    return SendBytes(frame.data(), frame.size());
  }
  bool SendRequestByteByByte(uint64_t request_id, const std::string& payload) {
    std::string frame;
    EncodeMessage(request_id, payload, frame);
    for (char byte : frame) {
      if (!SendBytes(&byte, 1)) {
        return false;
      }
    }
    return true;
  }
  bool RecvMessage(Message* out) {
    while (inbox_.empty()) {
      char buf[4096];
      ssize_t r = ::recv(fd_, buf, sizeof buf, 0);
      if (r < 0 && errno == EINTR) {
        continue;
      }
      if (r <= 0) {
        return false;
      }
      if (!parser_.Feed(buf, static_cast<size_t>(r))) {
        return false;
      }
      for (Message& msg : parser_.TakeMessages()) {
        inbox_.push_back(std::move(msg));
      }
    }
    *out = std::move(inbox_.front());
    inbox_.pop_front();
    return true;
  }

 private:
  int fd_ = -1;
  FrameParser parser_;
  std::deque<Message> inbox_;
};

bool RunEchoExchange(TestTcpClient& client, uint64_t requests, int window,
                     const std::string& payload_prefix) {
  uint64_t sent = 0;
  uint64_t received = 0;
  while (received < requests) {
    while (sent < requests && sent - received < static_cast<uint64_t>(window)) {
      if (!client.SendRequest(sent, payload_prefix + std::to_string(sent))) {
        return false;
      }
      sent++;
    }
    Message response;
    if (!client.RecvMessage(&response)) {
      return false;
    }
    if (response.request_id != received ||
        response.payload !=
            "echo:" + payload_prefix + std::to_string(received)) {
      return false;
    }
    received++;
  }
  return true;
}

// Builds the runtime + transport pair for one backend variant. For socket backends,
// `sock_out` exposes the shared SocketTransportBase surface (port, drop counters);
// for loopback, `loop_out` exposes the test-drivable control surface.
std::unique_ptr<Runtime> MakeRuntime(const BackendVariant& variant,
                                     RuntimeOptions options,
                                     TcpTransportOptions tcp,
                                     CompletionHandler on_complete,
                                     SocketTransportBase** sock_out,
                                     LoopbackTransport** loop_out) {
  std::unique_ptr<Transport> transport;
  if (variant.backend == Backend::kLoopback) {
    auto loop = std::make_unique<LoopbackTransport>(
        options.num_workers, options.num_flow_groups, options.ring_capacity);
    *loop_out = loop.get();
    transport = std::move(loop);
  } else if (variant.backend == Backend::kTcp) {
    auto tcp_transport = std::make_unique<TcpTransport>(tcp);
    *sock_out = tcp_transport.get();
    transport = std::move(tcp_transport);
  } else {
    UringTransportOptions uopts(tcp);
    uopts.multishot = variant.multishot;
    uopts.sqpoll = variant.sqpoll;
    uopts.send_zc = variant.send_zc;
    auto uring = std::make_unique<UringTransport>(uopts);
    *sock_out = uring.get();
    transport = std::move(uring);
  }
  transport->set_on_complete(std::move(on_complete));
  return std::make_unique<Runtime>(options, std::move(transport), EchoHandler());
}

class TransportConformance : public ::testing::TestWithParam<BackendVariant> {
 protected:
  void SetUp() override {
    const BackendVariant& v = GetParam();
    if (v.backend != Backend::kUring) {
      return;
    }
    if (!UringTransport::Available()) {
      GTEST_SKIP() << "io_uring unavailable on this host: "
                   << UringTransport::UnavailableReason();
    }
    // A combo whose rung the kernel denies is skipped, not silently degraded: a
    // degraded run would retest rung 0 under a misleading name.
    const UringProbe& probe = ProbeUring();
    if (v.multishot && !(probe.buf_ring && probe.multishot)) {
      GTEST_SKIP() << "multishot/buffer-ring rung denied by kernel probe";
    }
    if (v.sqpoll && !probe.sqpoll) {
      GTEST_SKIP() << "SQPOLL rung denied by kernel probe";
    }
    if (v.send_zc && !probe.send_zc) {
      GTEST_SKIP() << "SEND_ZC rung denied by kernel probe";
    }
  }

  bool IsSocketBackend() const {
    return GetParam().backend != Backend::kLoopback;
  }

  RuntimeOptions Options(int workers, int flows) {
    RuntimeOptions options;
    options.num_workers = workers;
    options.mode = RuntimeMode::kZygos;
    options.num_flows = flows;
    options.yield_when_idle = true;
    return options;
  }
};

TEST_P(TransportConformance, EchoesInPerFlowOrder) {
  RuntimeOptions options = Options(/*workers=*/2, /*flows=*/8);
  CompletionLog log;
  SocketTransportBase* sock = nullptr;
  LoopbackTransport* loop = nullptr;
  auto runtime = MakeRuntime(GetParam(), options, TcpOptionsFor(options),
                             log.Handler(), &sock, &loop);
  runtime->Start();
  constexpr uint64_t kPerFlow = 60;
  if (IsSocketBackend()) {
    TestTcpClient a(sock->port());
    TestTcpClient b(sock->port());
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(RunEchoExchange(a, kPerFlow, /*window=*/4, "a"));
    EXPECT_TRUE(RunEchoExchange(b, kPerFlow, /*window=*/4, "b"));
  } else {
    for (uint64_t i = 0; i < kPerFlow; ++i) {
      for (uint64_t flow = 0; flow < 2; ++flow) {
        ASSERT_TRUE(runtime->Inject(flow, flow * kPerFlow + i, "x"));
      }
    }
    ASSERT_TRUE(WaitFor([&] { return log.total() == 2 * kPerFlow; }));
    for (uint64_t flow = 0; flow < 2; ++flow) {
      auto order = log.FlowOrder(flow);
      ASSERT_EQ(order.size(), kPerFlow);
      EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
    }
  }
  runtime->Shutdown();
  EXPECT_EQ(runtime->Completed(), 2 * kPerFlow);
  EXPECT_EQ(log.total(), 2 * kPerFlow);
}

TEST_P(TransportConformance, PathologicalSegmentationKeepsFlowOrdered) {
  // One frame delivered a byte per segment: reassembly and per-flow ordering must
  // survive arbitrary segment boundaries on every backend.
  RuntimeOptions options = Options(/*workers=*/2, /*flows=*/4);
  CompletionLog log;
  SocketTransportBase* sock = nullptr;
  LoopbackTransport* loop = nullptr;
  auto runtime = MakeRuntime(GetParam(), options, TcpOptionsFor(options),
                             log.Handler(), &sock, &loop);
  runtime->Start();
  constexpr uint64_t kRequests = 20;
  if (IsSocketBackend()) {
    TestTcpClient client(sock->port());
    ASSERT_TRUE(client.ok());
    for (uint64_t i = 0; i < kRequests; ++i) {
      ASSERT_TRUE(client.SendRequestByteByByte(i, "p" + std::to_string(i)));
      Message response;
      ASSERT_TRUE(client.RecvMessage(&response));
      EXPECT_EQ(response.request_id, i);
      EXPECT_EQ(response.payload, "echo:p" + std::to_string(i));
    }
  } else {
    for (uint64_t i = 0; i < kRequests; ++i) {
      std::string frame;
      EncodeMessage(Message{i, "p" + std::to_string(i)}, frame);
      for (size_t b = 0; b + 1 < frame.size(); ++b) {
        ASSERT_TRUE(runtime->InjectBytes(0, frame.substr(b, 1), 0));
      }
      ASSERT_TRUE(runtime->InjectBytes(0, frame.substr(frame.size() - 1), 1));
    }
    ASSERT_TRUE(WaitFor([&] { return log.total() == kRequests; }));
  }
  runtime->Shutdown();
  EXPECT_EQ(runtime->Completed(), kRequests);
  auto order = log.FlowOrder(IsSocketBackend() ? 0 : 0);
  ASSERT_EQ(order.size(), kRequests);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST_P(TransportConformance, LifecycleCountersBalanceAfterClientHangups) {
  // Every open gets a matching close and recycle; occupancy returns to zero.
  RuntimeOptions options = Options(/*workers=*/2, /*flows=*/8);
  CompletionLog log;
  SocketTransportBase* sock = nullptr;
  LoopbackTransport* loop = nullptr;
  auto runtime = MakeRuntime(GetParam(), options, TcpOptionsFor(options),
                             log.Handler(), &sock, &loop);
  runtime->Start();
  constexpr uint64_t kConns = 3;
  if (IsSocketBackend()) {
    for (uint64_t c = 0; c < kConns; ++c) {
      TestTcpClient client(sock->port());
      ASSERT_TRUE(client.ok());
      EXPECT_TRUE(RunEchoExchange(client, /*requests=*/5, /*window=*/2, "c"));
    }
  } else {
    for (uint64_t c = 0; c < kConns; ++c) {
      ASSERT_TRUE(loop->OpenFlow(c));
      ASSERT_TRUE(runtime->Inject(c, c, "ping"));
      ASSERT_TRUE(WaitFor([&] { return runtime->Completed() == c + 1; }));
      ASSERT_TRUE(loop->CloseFlowFromClient(c));
    }
  }
  ASSERT_TRUE(
      WaitFor([&] { return runtime->TotalStats().flows_recycled == kConns; }));
  runtime->Shutdown();
  WorkerStats total = runtime->TotalStats();
  EXPECT_EQ(total.flows_opened, kConns);
  EXPECT_EQ(total.flows_closed, kConns);
  EXPECT_EQ(total.flows_recycled, kConns);
  EXPECT_EQ(runtime->OpenFlows(), 0u);
}

TEST_P(TransportConformance, SlotRecyclingServesMoreConnectionsThanTable) {
  // A 2-slot table serves 6 sequential connections: ids recycle, occupancy stays
  // bounded, and (socket backends) nothing is refused at the cap.
  RuntimeOptions options = Options(/*workers=*/2, /*flows=*/2);
  options.max_flows = 2;
  CompletionLog log;
  SocketTransportBase* sock = nullptr;
  LoopbackTransport* loop = nullptr;
  auto runtime = MakeRuntime(GetParam(), options, TcpOptionsFor(options),
                             log.Handler(), &sock, &loop);
  runtime->Start();
  constexpr uint64_t kConns = 6;
  for (uint64_t c = 0; c < kConns; ++c) {
    if (IsSocketBackend()) {
      TestTcpClient client(sock->port());
      ASSERT_TRUE(client.ok()) << "connection " << c << " refused";
      EXPECT_TRUE(RunEchoExchange(client, /*requests=*/4, /*window=*/2, "c"));
    } else {
      uint64_t flow = c % 2;
      ASSERT_TRUE(loop->OpenFlow(flow));
      ASSERT_TRUE(runtime->Inject(flow, c, "ping"));
      ASSERT_TRUE(WaitFor([&] { return runtime->Completed() == c + 1; }));
      ASSERT_TRUE(loop->CloseFlowFromClient(flow));
    }
    // The table has zero spare slots: this teardown must finish before the next
    // connection can claim an id.
    ASSERT_TRUE(WaitFor([&] {
      return runtime->TotalStats().flows_recycled == c + 1;
    })) << "teardown " << c << " never recycled its slot";
  }
  runtime->Shutdown();
  WorkerStats total = runtime->TotalStats();
  EXPECT_EQ(total.flows_opened, kConns);
  EXPECT_EQ(total.flows_closed, kConns);
  EXPECT_EQ(total.flows_recycled, kConns);
  EXPECT_LE(runtime->PeakOpenFlows(), 2u) << "occupancy exceeded the table";
  if (IsSocketBackend()) {
    EXPECT_EQ(sock->AcceptedConnections(), kConns);
    EXPECT_EQ(sock->CapacityRefusals(), 0u);
  }
  uint64_t generation_sum = 0;
  for (uint64_t flow = 0; flow < 2; ++flow) {
    generation_sum += runtime->FlowGeneration(flow);
  }
  EXPECT_EQ(generation_sum, kConns);
}

TEST_P(TransportConformance, PoisonedFlowIsSeveredAloneKeepingNeighborsAlive) {
  // A frame whose length field exceeds FrameParser::kMaxPayload poisons the parser:
  // the runtime severs that flow at the transport (CloseFlow) while neighbours keep
  // being served — the sever path every backend must implement.
  RuntimeOptions options = Options(/*workers=*/2, /*flows=*/8);
  CompletionLog log;
  SocketTransportBase* sock = nullptr;
  LoopbackTransport* loop = nullptr;
  auto runtime = MakeRuntime(GetParam(), options, TcpOptionsFor(options),
                             log.Handler(), &sock, &loop);
  runtime->Start();
  const std::string poison(16, '\xFF');  // length field 0xFFFFFFFF >> kMaxPayload
  if (IsSocketBackend()) {
    TestTcpClient good(sock->port());
    TestTcpClient bad(sock->port());
    ASSERT_TRUE(good.ok());
    ASSERT_TRUE(bad.ok());
    EXPECT_TRUE(RunEchoExchange(good, /*requests=*/5, /*window=*/2, "g"));
    ASSERT_TRUE(bad.SendBytes(poison.data(), poison.size()));
    Message never;
    EXPECT_FALSE(bad.RecvMessage(&never)) << "poisoned connection must be severed";
    EXPECT_TRUE(RunEchoExchange(good, /*requests=*/5, /*window=*/2, "h"))
        << "healthy connection must survive a neighbour's garbage";
  } else {
    ASSERT_TRUE(loop->OpenFlow(0));
    ASSERT_TRUE(loop->OpenFlow(1));
    ASSERT_TRUE(runtime->InjectBytes(1, poison, 0));
    ASSERT_TRUE(
        WaitFor([&] { return runtime->TotalStats().flows_closed >= 1; }));
    ASSERT_TRUE(runtime->Inject(0, 99, "alive"));
    ASSERT_TRUE(WaitFor([&] { return runtime->Completed() >= 1; }));
    EXPECT_EQ(log.ResponseFor(99), "echo:alive");
  }
  runtime->Shutdown();
  EXPECT_GE(runtime->TotalStats().flows_closed, 1u);
  EXPECT_GT(runtime->NicDrops(), 0u) << "the severance is accounted as a drop";
}

TEST_P(TransportConformance, StalledPeerIsDroppedAfterDeadline) {
  // A peer that stops reading costs its home core at most stall_drop_deadline, then
  // the response is dropped, the connection severed, and StallDrops() accounts it.
  if (!IsSocketBackend()) {
    GTEST_SKIP() << "loopback has no socket backpressure to stall on";
  }
  RuntimeOptions options = Options(/*workers=*/2, /*flows=*/16);
  TcpTransportOptions tcp = TcpOptionsFor(options);
  tcp.stall_drop_deadline = 30 * kMillisecond;  // keep the test fast
  SocketTransportBase* sock = nullptr;
  LoopbackTransport* loop = nullptr;
  auto runtime =
      MakeRuntime(GetParam(), options, tcp, nullptr, &sock, &loop);
  runtime->Start();
  {
    TestTcpClient deaf(sock->port(), /*rcvbuf=*/8192);
    ASSERT_TRUE(deaf.ok());
    const std::string big(8192, 'z');
    for (uint64_t i = 0; i < 800; ++i) {
      if (!deaf.SendRequest(i, big)) {
        break;  // severed mid-send: exactly the behaviour under test
      }
      if (sock->StallDrops() >= 1) {
        break;
      }
    }
    ASSERT_TRUE(WaitFor([&] { return sock->StallDrops() >= 1; }))
        << "TX to a deaf peer never tripped the stall deadline";
  }
  // Teardown after a stall drop is asynchronous (uring defers the close behind
  // ASYNC_CANCEL; under SQPOLL the final CQE additionally waits on the poller
  // thread's next quantum) — wait for the kFlowClosed to land before stopping.
  ASSERT_TRUE(
      WaitFor([&] { return runtime->TotalStats().flows_closed >= 1; }))
      << "the stall drop must tear the connection down";
  runtime->Shutdown();
  EXPECT_GE(sock->StallDrops(), 1u);
  EXPECT_EQ(sock->CapacityRefusals(), 0u);
}

TEST_P(TransportConformance, EveryRxSegmentCarriesATransportArrivalStamp) {
  // Segment::rx_nanos is the clock overload control sheds against (queueing delay =
  // dispatch - rx_nanos), so every backend must stamp it at transport arrival. The
  // runtime backfills a zero stamp with its own clock and counts it in rx_unstamped;
  // this gate pins that counter to zero per backend.
  RuntimeOptions options = Options(/*workers=*/2, /*flows=*/8);
  CompletionLog log;
  SocketTransportBase* sock = nullptr;
  LoopbackTransport* loop = nullptr;
  auto runtime = MakeRuntime(GetParam(), options, TcpOptionsFor(options),
                             log.Handler(), &sock, &loop);
  runtime->Start();
  constexpr uint64_t kRequests = 40;
  if (IsSocketBackend()) {
    TestTcpClient client(sock->port());
    ASSERT_TRUE(client.ok());
    EXPECT_TRUE(RunEchoExchange(client, kRequests, /*window=*/4, "s"));
  } else {
    for (uint64_t i = 0; i < kRequests; ++i) {
      ASSERT_TRUE(runtime->Inject(i % 4, i, "s"));
    }
    ASSERT_TRUE(WaitFor([&] { return log.total() == kRequests; }));
  }
  runtime->Shutdown();
  WorkerStats total = runtime->TotalStats();
  EXPECT_GT(total.rx_segments, 0u);
  EXPECT_EQ(total.rx_unstamped, 0u)
      << GetParam().name << " delivered segments with rx_nanos == 0";
}

// Uring-only: the rungs a variant requested (and the probe granted — SetUp skips
// otherwise) must actually engage, visible in the transport's own counters. This
// catches a rung silently degrading to rung 0 and the matrix retesting nothing.
TEST_P(TransportConformance, RequestedFeatureRungsActuallyEngage) {
  const BackendVariant& v = GetParam();
  if (v.backend != Backend::kUring) {
    GTEST_SKIP() << "feature rungs are a uring concept";
  }
  RuntimeOptions options = Options(/*workers=*/2, /*flows=*/8);
  CompletionLog log;
  SocketTransportBase* sock = nullptr;
  LoopbackTransport* loop = nullptr;
  auto runtime = MakeRuntime(GetParam(), options, TcpOptionsFor(options),
                             log.Handler(), &sock, &loop);
  auto* uring = static_cast<UringTransport*>(sock);
  runtime->Start();
  EXPECT_EQ(uring->MultishotEnabled(), v.multishot);
  EXPECT_EQ(uring->SqpollEnabled(), v.sqpoll);
  EXPECT_EQ(uring->SendZcEnabled(), v.send_zc);
  {
    TestTcpClient client(sock->port());
    ASSERT_TRUE(client.ok());
    EXPECT_TRUE(RunEchoExchange(client, /*requests=*/50, /*window=*/4, "f"));
  }
  if (v.multishot) {
    EXPECT_GT(uring->MultishotRecvs(), 0u)
        << "multishot requested+granted but no buffer-ring completion landed";
  } else {
    EXPECT_EQ(uring->MultishotRecvs(), 0u);
  }
  if (v.send_zc) {
    EXPECT_GT(uring->ZcSends(), 0u)
        << "send_zc requested+granted but every TX took the plain-SEND path";
  } else {
    EXPECT_EQ(uring->ZcSends(), 0u);
  }
  runtime->Shutdown();
}

// Forced fallback: every rung explicitly denied must reproduce rung 0 exactly —
// byte-identical echo across binary payloads covering all 256 byte values, and no
// rung counter may tick.
TEST(UringForcedFallback, AllRungsDeniedEchoesByteIdentically) {
  if (!UringTransport::Available()) {
    GTEST_SKIP() << "io_uring unavailable on this host: "
                 << UringTransport::UnavailableReason();
  }
  RuntimeOptions options;
  options.num_workers = 2;
  options.mode = RuntimeMode::kZygos;
  options.num_flows = 8;
  options.yield_when_idle = true;
  UringTransportOptions uopts(TcpOptionsFor(options));
  uopts.multishot = false;
  uopts.sqpoll = false;
  uopts.send_zc = false;
  auto uring = std::make_unique<UringTransport>(uopts);
  UringTransport* sock = uring.get();
  auto runtime =
      std::make_unique<Runtime>(options, std::move(uring), EchoHandler());
  runtime->Start();
  EXPECT_FALSE(sock->MultishotEnabled());
  EXPECT_FALSE(sock->SqpollEnabled());
  EXPECT_FALSE(sock->SendZcEnabled());
  {
    TestTcpClient client(sock->port());
    ASSERT_TRUE(client.ok());
    std::string all_bytes(256, '\0');
    for (int b = 0; b < 256; ++b) {
      all_bytes[static_cast<size_t>(b)] = static_cast<char>(b);
    }
    for (uint64_t i = 0; i < 40; ++i) {
      std::string payload = all_bytes + std::to_string(i);
      ASSERT_TRUE(client.SendRequest(i, payload));
      Message response;
      ASSERT_TRUE(client.RecvMessage(&response));
      EXPECT_EQ(response.request_id, i);
      ASSERT_EQ(response.payload, "echo:" + payload)
          << "fallback path corrupted bytes at request " << i;
    }
  }
  EXPECT_EQ(sock->MultishotRecvs(), 0u);
  EXPECT_EQ(sock->ZcSends(), 0u);
  runtime->Shutdown();
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, TransportConformance, ::testing::ValuesIn(AllVariants()),
    [](const ::testing::TestParamInfo<BackendVariant>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace zygos
