// Tests for the memcached-style KV store: protocol codec, hash table (including
// concurrent access), service dispatch and the ETC/USR workload generators.
#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/kvstore/hash_table.h"
#include "src/kvstore/protocol.h"
#include "src/kvstore/service.h"
#include "src/kvstore/workload.h"

namespace zygos {
namespace {

// --- Protocol ------------------------------------------------------------------------

TEST(KvProtocolTest, RequestRoundTripGet) {
  KvRequest request{KvOp::kGet, "some-key", ""};
  auto decoded = DecodeKvRequest(EncodeKvRequest(request));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->op, KvOp::kGet);
  EXPECT_EQ(decoded->key, "some-key");
  EXPECT_TRUE(decoded->value.empty());
}

TEST(KvProtocolTest, RequestRoundTripSetWithBinaryValue) {
  std::string value;
  for (int i = 0; i < 256; ++i) {
    value.push_back(static_cast<char>(i));
  }
  KvRequest request{KvOp::kSet, "k", value};
  auto decoded = DecodeKvRequest(EncodeKvRequest(request));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->op, KvOp::kSet);
  EXPECT_EQ(decoded->value, value);
}

TEST(KvProtocolTest, ResponseRoundTrip) {
  for (auto status : {KvStatus::kOk, KvStatus::kMiss, KvStatus::kError}) {
    KvResponse response{status, status == KvStatus::kOk ? "payload" : ""};
    auto decoded = DecodeKvResponse(EncodeKvResponse(response));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->status, status);
    EXPECT_EQ(decoded->value, response.value);
  }
}

TEST(KvProtocolTest, DecodeRejectsTruncatedInput) {
  EXPECT_FALSE(DecodeKvRequest("").has_value());
  EXPECT_FALSE(DecodeKvRequest("\x01").has_value());
  // Header promising a longer key than the payload carries.
  std::string bogus;
  bogus.push_back(0);        // op
  bogus.push_back(50);       // key_len low byte = 50
  bogus.push_back(0);        // key_len high byte
  bogus.append("short");     // only 5 bytes of key follow
  EXPECT_FALSE(DecodeKvRequest(bogus).has_value());
  EXPECT_FALSE(DecodeKvResponse("").has_value());
}

TEST(KvProtocolTest, DecodeRejectsUnknownOp) {
  std::string raw = EncodeKvRequest({KvOp::kGet, "k", ""});
  raw[0] = 9;  // not a valid KvOp
  EXPECT_FALSE(DecodeKvRequest(raw).has_value());
}

// --- Hash table ----------------------------------------------------------------------

TEST(HashTableTest, SetGetDelete) {
  HashTable table(1024, 8);
  EXPECT_TRUE(table.Set("a", "1"));
  EXPECT_FALSE(table.Set("a", "2"));  // overwrite is not a new insert
  EXPECT_EQ(table.Get("a").value_or("?"), "2");
  EXPECT_FALSE(table.Get("missing").has_value());
  EXPECT_TRUE(table.Delete("a"));
  EXPECT_FALSE(table.Delete("a"));
  EXPECT_FALSE(table.Get("a").has_value());
  EXPECT_EQ(table.Size(), 0u);
}

TEST(HashTableTest, SizeTracksInsertsAcrossManyKeys) {
  HashTable table(64, 4);  // force heavy chaining
  constexpr int kKeys = 5000;
  for (int i = 0; i < kKeys; ++i) {
    table.Set("key-" + std::to_string(i), std::to_string(i));
  }
  EXPECT_EQ(table.Size(), static_cast<size_t>(kKeys));
  for (int i = 0; i < kKeys; ++i) {
    auto hit = table.Get("key-" + std::to_string(i));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, std::to_string(i));
  }
}

TEST(HashTableTest, EmptyKeyAndLargeValue) {
  HashTable table;
  std::string big(1 << 20, 'x');
  EXPECT_TRUE(table.Set("", big));
  EXPECT_EQ(table.Get("").value_or("").size(), big.size());
}

TEST(HashTableTest, ConcurrentDisjointWritersDontLoseUpdates) {
  HashTable table(1 << 12, 16);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, t] {
      for (int i = 0; i < kPerThread; ++i) {
        table.Set("t" + std::to_string(t) + "-" + std::to_string(i), std::to_string(i));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(table.Size(), static_cast<size_t>(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; i += 97) {
      auto hit = table.Get("t" + std::to_string(t) + "-" + std::to_string(i));
      ASSERT_TRUE(hit.has_value());
      EXPECT_EQ(*hit, std::to_string(i));
    }
  }
}

TEST(HashTableTest, ConcurrentReadersSeeConsistentValues) {
  // Writers flip one key between two equally sized values; readers must always observe
  // one of the two (never a torn mixture) because reads copy under the stripe lock.
  HashTable table;
  const std::string v1(64, 'a');
  const std::string v2(64, 'b');
  table.Set("flip", v1);
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) {
      table.Set("flip", (i & 1) != 0 ? v1 : v2);
    }
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load()) {
      auto value = table.Get("flip");
      if (value.has_value() && *value != v1 && *value != v2) {
        torn.fetch_add(1);
      }
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(torn.load(), 0);
}

// --- Service -------------------------------------------------------------------------

TEST(KvServiceTest, GetSetDeleteViaPayloads) {
  KvService service;
  auto set = DecodeKvResponse(service.Handle(EncodeKvRequest({KvOp::kSet, "k", "v"})));
  ASSERT_TRUE(set.has_value());
  EXPECT_EQ(set->status, KvStatus::kOk);

  auto get = DecodeKvResponse(service.Handle(EncodeKvRequest({KvOp::kGet, "k", ""})));
  ASSERT_TRUE(get.has_value());
  EXPECT_EQ(get->status, KvStatus::kOk);
  EXPECT_EQ(get->value, "v");

  auto del = DecodeKvResponse(service.Handle(EncodeKvRequest({KvOp::kDelete, "k", ""})));
  ASSERT_TRUE(del.has_value());
  EXPECT_EQ(del->status, KvStatus::kOk);

  auto miss = DecodeKvResponse(service.Handle(EncodeKvRequest({KvOp::kGet, "k", ""})));
  ASSERT_TRUE(miss.has_value());
  EXPECT_EQ(miss->status, KvStatus::kMiss);
}

TEST(KvServiceTest, MalformedRequestYieldsErrorNotCrash) {
  KvService service;
  auto response = DecodeKvResponse(service.Handle("garbage"));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, KvStatus::kError);
}

// --- Zero-copy fast path --------------------------------------------------------------

TEST(KvServiceTest, HandleViewWritesResponseIntoTheFrameBuilder) {
  KvService service;
  service.table().Set("k", "value-bytes");

  ResponseBuilder get(/*payload_hint=*/16);
  EXPECT_EQ(service.HandleView(EncodeKvRequest({KvOp::kGet, "k", ""}), get),
            KvStatus::kOk);
  IoBuf frame = get.Finish(/*request_id=*/1);
  auto decoded = DecodeKvResponse(frame.view().substr(kFrameHeaderSize));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, KvStatus::kOk);
  EXPECT_EQ(decoded->value, "value-bytes");

  // A miss patches the optimistic status byte in place: exactly one byte, kMiss.
  ResponseBuilder miss;
  EXPECT_EQ(service.HandleView(EncodeKvRequest({KvOp::kGet, "absent", ""}), miss),
            KvStatus::kMiss);
  IoBuf miss_frame = miss.Finish(2);
  std::string_view miss_payload = miss_frame.view().substr(kFrameHeaderSize);
  ASSERT_EQ(miss_payload.size(), 1u);
  EXPECT_EQ(static_cast<KvStatus>(miss_payload[0]), KvStatus::kMiss);

  ResponseBuilder bad;
  EXPECT_EQ(service.HandleView("x", bad), KvStatus::kError);
  ResponseBuilder del;
  EXPECT_EQ(service.HandleView(EncodeKvRequest({KvOp::kDelete, "k", ""}), del),
            KvStatus::kOk);
  EXPECT_FALSE(service.table().Get("k").has_value());
}

TEST(KvProtocolTest, ViewDecodeAliasesThePayload) {
  std::string payload = EncodeKvRequest({KvOp::kSet, "the-key", "the-value"});
  auto view = DecodeKvRequestView(payload);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->key, "the-key");
  EXPECT_EQ(view->value, "the-value");
  // Zero copy: the views point into the original payload bytes.
  EXPECT_GE(view->key.data(), payload.data());
  EXPECT_LT(view->key.data(), payload.data() + payload.size());
  EXPECT_GE(view->value.data(), payload.data());
}

TEST(HashTableTest, VisitExposesValueUnderTheLock) {
  HashTable table(256, 4);
  table.Set("visited", "through-a-view");
  std::string copied;
  EXPECT_TRUE(table.Visit("visited", [&copied](std::string_view value) {
    copied = std::string(value);
  }));
  EXPECT_EQ(copied, "through-a-view");
  EXPECT_FALSE(table.Visit("missing", [](std::string_view) { FAIL(); }));
}

// --- Workloads -----------------------------------------------------------------------

TEST(KvWorkloadTest, KeysAreStableAndUnique) {
  KvWorkload workload(KvWorkloadSpec::Etc(), 7);
  EXPECT_EQ(workload.KeyAt(42), workload.KeyAt(42));
  EXPECT_NE(workload.KeyAt(1), workload.KeyAt(2));
}

TEST(KvWorkloadTest, KeyLengthProfilesMatchTraces) {
  KvWorkload usr(KvWorkloadSpec::Usr(), 7);
  KvWorkload etc(KvWorkloadSpec::Etc(), 7);
  for (uint64_t i = 0; i < 500; ++i) {
    size_t usr_len = usr.KeyAt(i).size();
    EXPECT_GE(usr_len, 19u);
    EXPECT_LE(usr_len, 21u);
    size_t etc_len = etc.KeyAt(i).size();
    EXPECT_GE(etc_len, 20u);
    EXPECT_LE(etc_len, 45u);
  }
}

TEST(KvWorkloadTest, UsrValuesAreTwoBytes) {
  KvWorkload workload(KvWorkloadSpec::Usr(), 3);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(workload.SampleValue(rng).size(), 2u);
  }
}

TEST(KvWorkloadTest, EtcValueSizesSpanTheDistribution) {
  KvWorkload workload(KvWorkloadSpec::Etc(), 3);
  Rng rng(3);
  RunningStats sizes;
  for (int i = 0; i < 20000; ++i) {
    sizes.Add(static_cast<double>(workload.SampleValue(rng).size()));
  }
  EXPECT_GE(sizes.Min(), 2.0);
  EXPECT_LE(sizes.Max(), 1024.0);
  // The mix has mass both below 16 B and above 512 B.
  EXPECT_LT(sizes.Min(), 16.0);
  EXPECT_GT(sizes.Max(), 512.0);
}

TEST(KvWorkloadTest, GetFractionIsRespected) {
  KvWorkload workload(KvWorkloadSpec::Etc(), 11);
  Rng rng(11);
  int gets = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    auto request = DecodeKvRequest(workload.SampleRequest(rng));
    ASSERT_TRUE(request.has_value());
    if (request->op == KvOp::kGet) {
      gets++;
    }
  }
  double fraction = static_cast<double>(gets) / kSamples;
  EXPECT_NEAR(fraction, KvWorkloadSpec::Etc().get_fraction, 0.01);
}

TEST(KvWorkloadTest, PopulateInsertsEveryKey) {
  KvWorkloadSpec spec = KvWorkloadSpec::Usr();
  spec.num_keys = 1000;
  KvWorkload workload(spec, 5);
  KvService service;
  workload.Populate(service);
  EXPECT_EQ(service.table().Size(), 1000u);
  EXPECT_TRUE(service.table().Get(workload.KeyAt(0)).has_value());
  EXPECT_TRUE(service.table().Get(workload.KeyAt(999)).has_value());
}

TEST(KvWorkloadTest, MeasuredServiceTimesArePositiveAndTiny) {
  KvWorkloadSpec spec = KvWorkloadSpec::Usr();
  spec.num_keys = 10000;
  KvWorkload workload(spec, 5);
  KvService service;
  workload.Populate(service);
  auto times = workload.MeasureServiceTimes(service, 2000);
  ASSERT_EQ(times.size(), 2000u);
  RunningStats stats;
  for (Nanos t : times) {
    EXPECT_GE(t, 0);
    stats.Add(static_cast<double>(t));
  }
  // The whole point of the memcached experiment: tasks are ~the microsecond scale.
  // Allow generous slack for noisy CI machines.
  EXPECT_LT(stats.Mean(), 100.0 * kMicrosecond);
}

}  // namespace
}  // namespace zygos
