#!/usr/bin/env bash
# Undo scripts/tune_env.sh: replay the `knob=old>new` entries from the state file in
# reverse, restoring each knob's pre-tuning value. Safe to run when tune_env applied
# nothing (empty or missing state file -> no-op with a message).
#
# Usage: scripts/restore_env.sh
#        TUNE_STATE=/path scripts/restore_env.sh
set -uo pipefail

STATE="${TUNE_STATE:-/tmp/zygos_tune_env.state}"
if [[ ! -s "${STATE}" ]]; then
  echo "restore_env: no recorded tunings in ${STATE} — nothing to restore"
  exit 0
fi

# Map a tuning label back to its sysfs path (inverse of tune_env.sh).
path_of() {
  case "$1" in
    governor:*) echo "/sys/devices/system/cpu/cpufreq/${1#governor:}/scaling_governor" ;;
    no_turbo) echo /sys/devices/system/cpu/intel_pstate/no_turbo ;;
    boost) echo /sys/devices/system/cpu/cpufreq/boost ;;
    smt) echo /sys/devices/system/cpu/smt/control ;;
    irq:*) echo "/proc/irq/${1#irq:}/smp_affinity" ;;
    wq_cpumask) echo /sys/devices/virtual/workqueue/cpumask ;;
    timer_migration) echo /proc/sys/kernel/timer_migration ;;
    sched_rt_runtime_us) echo /proc/sys/kernel/sched_rt_runtime_us ;;
    *) echo "" ;;
  esac
}

restored=0
failed=0
while IFS= read -r entry; do
  label="${entry%%=*}"
  transition="${entry#*=}"
  old="${transition%%>*}"
  path="$(path_of "${label}")"
  if [[ -z "${path}" ]]; then
    echo "restore_env: unknown entry '${entry}' — skipping"
    failed=$((failed + 1))
    continue
  fi
  if echo "${old}" > "${path}" 2>/dev/null; then
    echo "restore_env: ${label} -> ${old}"
    restored=$((restored + 1))
  else
    echo "restore_env: cannot restore ${label} (${path}) to ${old}"
    failed=$((failed + 1))
  fi
done < <(tac "${STATE}")

if [[ "${failed}" -eq 0 ]]; then
  : > "${STATE}"
  echo "restore_env: ${restored} tunings restored, state cleared"
else
  echo "restore_env: ${restored} restored, ${failed} failed — state kept in ${STATE}" >&2
  exit 1
fi
