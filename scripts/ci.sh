#!/usr/bin/env bash
# Tier-1 verification: configure, build, run every test suite, smoke-test the
# end-to-end runtime (loopback harness AND the real-TCP kv_server), and re-configure
# the transport layer with warnings-as-errors. This is the gate every PR must keep
# green.
#
# Usage:
#   scripts/ci.sh                 # Release build in ./build
#   BUILD_DIR=out scripts/ci.sh   # custom build directory
#   CMAKE_ARGS="-DZYGOS_WERROR=ON" scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"

echo "== configure (${BUILD_DIR})"
# shellcheck disable=SC2086  # CMAKE_ARGS is intentionally word-split
cmake -B "${BUILD_DIR}" -S . ${CMAKE_ARGS:-}

echo "== build (-j${JOBS})"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== ctest"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== smoke: examples/quickstart"
"${BUILD_DIR}/examples/quickstart" --requests=5000 --rate=20000

echo "== smoke: examples/kv_server over real TCP (loopback interface)"
"${BUILD_DIR}/examples/kv_server" --requests=4000 --connections=8 --threads=2

echo "== smoke: bench/micro_dataplane (pooled path must stay allocation-free)"
dataplane_out="$("${BUILD_DIR}/bench/micro_dataplane" --requests=50000 --warmup=10000)"
printf '%s\n' "${dataplane_out}"
pooled_allocs="$(printf '%s\n' "${dataplane_out}" | awk -F, '$1 == "pooled" {print $3}')"
if [[ -z "${pooled_allocs}" ]] || ! awk -v a="${pooled_allocs}" 'BEGIN {exit !(a == 0)}'; then
  echo "ci: pooled data plane allocates (${pooled_allocs:-missing} allocs/op)" >&2
  exit 1
fi

echo "== warnings-as-errors configure of the transport layer (${BUILD_DIR}-werror)"
cmake -B "${BUILD_DIR}-werror" -S . -DZYGOS_WERROR=ON \
  -DZYGOS_BUILD_BENCH=OFF -DZYGOS_BUILD_EXAMPLES=OFF -DZYGOS_BUILD_TESTS=OFF
cmake --build "${BUILD_DIR}-werror" -j "${JOBS}" --target zygos_runtime

echo "CI OK"
