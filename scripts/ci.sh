#!/usr/bin/env bash
# Tier-1 verification: configure, build, run every test suite, smoke-test the
# end-to-end runtime (loopback harness AND the real-TCP kv_server), and re-configure
# the transport layer with warnings-as-errors. This is the gate every PR must keep
# green.
#
# Usage:
#   scripts/ci.sh                 # Release build in ./build
#   BUILD_DIR=out scripts/ci.sh   # custom build directory
#   CMAKE_ARGS="-DZYGOS_WERROR=ON" scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"

echo "== configure (${BUILD_DIR})"
# shellcheck disable=SC2086  # CMAKE_ARGS is intentionally word-split
cmake -B "${BUILD_DIR}" -S . ${CMAKE_ARGS:-}

echo "== build (-j${JOBS})"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== ctest"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== smoke: examples/quickstart"
"${BUILD_DIR}/examples/quickstart" --requests=5000 --rate=20000

echo "== smoke: examples/kv_server over real TCP (loopback interface)"
"${BUILD_DIR}/examples/kv_server" --requests=4000 --connections=8 --threads=2

echo "== smoke: bench/micro_dataplane (pooled path must stay allocation-free)"
dataplane_out="$("${BUILD_DIR}/bench/micro_dataplane" --requests=50000 --warmup=10000)"
printf '%s\n' "${dataplane_out}"
pooled_allocs="$(printf '%s\n' "${dataplane_out}" | awk -F, '$1 == "pooled" {print $3}')"
if [[ -z "${pooled_allocs}" ]] || ! awk -v a="${pooled_allocs}" 'BEGIN {exit !(a == 0)}'; then
  echo "ci: pooled data plane allocates (${pooled_allocs:-missing} allocs/op)" >&2
  exit 1
fi

echo "== smoke: bench/fig6_live_runtime (one low-load point, loopback, live runtime)"
live_json="${BUILD_DIR}/fig6_live_smoke.json"
rm -f "${live_json}"
"${BUILD_DIR}/bench/fig6_live_runtime" --transport=loopback --configs=zygos \
  --rates=1500 --duration-ms=400 --warmup-ms=100 --dist=exponential \
  --service-us=100 --service-mode=sleep --workers=2 --connections=8 --seed=7 \
  --json="${live_json}" | tee /dev/stderr | grep -q '^zygos,' || {
    echo "ci: fig6_live_runtime emitted no zygos CSV row" >&2; exit 1; }
if command -v python3 > /dev/null; then
  python3 -m json.tool "${live_json}" > /dev/null || {
    echo "ci: ${live_json} is malformed JSON" >&2; exit 1; }
else
  grep -q '"metric": "live_zygos_p99_us_at_peak_load"' "${live_json}" || {
    echo "ci: ${live_json} is missing the live-runtime metric" >&2; exit 1; }
fi

echo "== smoke: kv_server open-loop loadgen mode over real TCP"
"${BUILD_DIR}/examples/kv_server" --mode=serve --port=7411 --workers=2 --keys=5000 &
kv_pid=$!
trap 'kill "${kv_pid}" 2>/dev/null || true' EXIT
sleep 1
"${BUILD_DIR}/examples/kv_server" --mode=loadgen --port=7411 --rate=3000 \
  --duration-ms=600 --warmup-ms=200 --connections=4 --threads=2 --keys=5000
kill -TERM "${kv_pid}"
wait "${kv_pid}"
trap - EXIT

echo "== warnings-as-errors configure of the transport layer (${BUILD_DIR}-werror)"
cmake -B "${BUILD_DIR}-werror" -S . -DZYGOS_WERROR=ON \
  -DZYGOS_BUILD_BENCH=OFF -DZYGOS_BUILD_EXAMPLES=OFF -DZYGOS_BUILD_TESTS=OFF
cmake --build "${BUILD_DIR}-werror" -j "${JOBS}" --target zygos_runtime

echo "CI OK"
