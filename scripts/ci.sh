#!/usr/bin/env bash
# Tier-1 verification: configure, build, run every test suite, and smoke-test the
# end-to-end runtime. This is the gate every PR must keep green.
#
# Usage:
#   scripts/ci.sh                 # Release build in ./build
#   BUILD_DIR=out scripts/ci.sh   # custom build directory
#   CMAKE_ARGS="-DZYGOS_WERROR=ON" scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"

echo "== configure (${BUILD_DIR})"
# shellcheck disable=SC2086  # CMAKE_ARGS is intentionally word-split
cmake -B "${BUILD_DIR}" -S . ${CMAKE_ARGS:-}

echo "== build (-j${JOBS})"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== ctest"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== smoke: examples/quickstart"
"${BUILD_DIR}/examples/quickstart" --requests=5000 --rate=20000

echo "CI OK"
