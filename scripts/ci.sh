#!/usr/bin/env bash
# Tier-1 verification: configure, build, run every test suite, smoke-test the
# end-to-end runtime (loopback harness AND the real-TCP kv_server), and re-configure
# the transport layer with warnings-as-errors. This is the gate every PR must keep
# green.
#
# Usage:
#   scripts/ci.sh                 # Release build in ./build
#   BUILD_DIR=out scripts/ci.sh   # custom build directory
#   CMAKE_ARGS="-DZYGOS_WERROR=ON" scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"

echo "== configure (${BUILD_DIR})"
# shellcheck disable=SC2086  # CMAKE_ARGS is intentionally word-split
cmake -B "${BUILD_DIR}" -S . ${CMAKE_ARGS:-}

echo "== build (-j${JOBS})"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== ctest"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== smoke: examples/quickstart"
"${BUILD_DIR}/examples/quickstart" --requests=5000 --rate=20000

echo "== smoke: examples/kv_server over real TCP (loopback interface)"
"${BUILD_DIR}/examples/kv_server" --requests=4000 --connections=8 --threads=2

echo "== smoke: bench/micro_dataplane (pooled path must stay allocation-free)"
dataplane_out="$("${BUILD_DIR}/bench/micro_dataplane" --requests=50000 --warmup=10000)"
printf '%s\n' "${dataplane_out}"
pooled_allocs="$(printf '%s\n' "${dataplane_out}" | awk -F, '$1 == "pooled" {print $3}')"
if [[ -z "${pooled_allocs}" ]] || ! awk -v a="${pooled_allocs}" 'BEGIN {exit !(a == 0)}'; then
  echo "ci: pooled data plane allocates (${pooled_allocs:-missing} allocs/op)" >&2
  exit 1
fi

echo "== smoke: bench/fig6_live_runtime (one low-load point, loopback, live runtime)"
live_json="${BUILD_DIR}/fig6_live_smoke.json"
rm -f "${live_json}"
# Capture-then-grep (NOT `| tee | grep -q`): under pipefail, grep -q exiting at
# the first match SIGPIPEs tee when the binary prints its headline later.
live_out="$("${BUILD_DIR}/bench/fig6_live_runtime" --transport=loopback \
  --configs=zygos --rates=1500 --duration-ms=400 --warmup-ms=100 \
  --dist=exponential --service-us=100 --service-mode=sleep --workers=2 \
  --connections=8 --seed=7 --json="${live_json}")"
printf '%s\n' "${live_out}"
printf '%s\n' "${live_out}" | grep -q '^zygos,' || {
    echo "ci: fig6_live_runtime emitted no zygos CSV row" >&2; exit 1; }
if command -v python3 > /dev/null; then
  python3 -m json.tool "${live_json}" > /dev/null || {
    echo "ci: ${live_json} is malformed JSON" >&2; exit 1; }
else
  grep -q '"metric": "live_zygos_p99_us_at_peak_load"' "${live_json}" || {
    echo "ci: ${live_json} is missing the live-runtime metric" >&2; exit 1; }
fi

echo "== smoke: bench/churn_live_runtime (one low churn rate, real TCP, small table)"
churn_json="${BUILD_DIR}/churn_smoke.json"
rm -f "${churn_json}"
churn_out="$("${BUILD_DIR}/bench/churn_live_runtime" --rate=1500 --churn-ms=30 \
  --duration-ms=600 --warmup-ms=200 --connections=4 --threads=2 --max-flows=16 \
  --seed=7 --json="${churn_json}")"
printf '%s\n' "${churn_out}"
printf '%s\n' "${churn_out}" | grep -q '^30,' || {
    echo "ci: churn_live_runtime emitted no churn CSV row" >&2; exit 1; }
if command -v python3 > /dev/null; then
  python3 -m json.tool "${churn_json}" > /dev/null || {
    echo "ci: ${churn_json} is malformed JSON" >&2; exit 1; }
fi
for gate in distinct_conns_exceed_capacity zero_capacity_refusals \
            flat_table_occupancy allocation_free_after_warmup; do
  grep -q "\"${gate}\": true" "${churn_json}" || {
    echo "ci: churn acceptance boolean ${gate} is not true" >&2; exit 1; }
done

echo "== smoke: bench/fanout_chaos (fan-out amplification through the chaos proxy)"
fanout_json="${BUILD_DIR}/fanout_smoke.json"
rm -f "${fanout_json}"
# --steal-compare=false keeps the smoke short; its boolean is then vacuously true
# and recorded as such in params ("steal_compare": false).
fanout_out="$("${BUILD_DIR}/bench/fanout_chaos" --fanouts=1,8 --logical-rate=150 \
  --duration-ms=1000 --warmup-ms=250 --steal-compare=false --seed=7 \
  --json="${fanout_json}")"
printf '%s\n' "${fanout_out}"
printf '%s\n' "${fanout_out}" | grep -q '^proxy,' || {
    echo "ci: fanout_chaos emitted no through-proxy CSV row" >&2; exit 1; }
if command -v python3 > /dev/null; then
  python3 -m json.tool "${fanout_json}" > /dev/null || {
    echo "ci: ${fanout_json} is malformed JSON" >&2; exit 1; }
fi
for gate in p99_amplification_monotone_in_fanout steal_leq_no_steal_under_jitter \
            all_runs_clean; do
  grep -q "\"${gate}\": true" "${fanout_json}" || {
    echo "ci: fanout acceptance boolean ${gate} is not true" >&2; exit 1; }
done

echo "== smoke: bench/fig10_live_runtime (one low-load TPC-C cell, loopback)"
# One sub-saturated zygos cell over the live TPC-C service: the ledger must balance
# exactly (commit+abort+shed+lost == sent, zero malformed) even in a 400 ms window.
# The monotone/steal booleans are vacuously true with a single rate and config; the
# ledger boolean is the real gate here.
fig10_json="${BUILD_DIR}/fig10_live_smoke.json"
rm -f "${fig10_json}"
fig10_out="$("${BUILD_DIR}/bench/fig10_live_runtime" --transport=loopback \
  --configs=zygos --rates=1200 --duration-ms=400 --warmup-ms=100 --workers=2 \
  --warehouses=1 --scale=tiny --seed=7 --json="${fig10_json}")"
printf '%s\n' "${fig10_out}"
printf '%s\n' "${fig10_out}" | grep -q '^zygos,' || {
    echo "ci: fig10_live_runtime emitted no zygos CSV row" >&2; exit 1; }
if command -v python3 > /dev/null; then
  python3 -m json.tool "${fig10_json}" > /dev/null || {
    echo "ci: ${fig10_json} is malformed JSON" >&2; exit 1; }
fi
for gate in zygos_p99_monotone_in_load steal_leq_no_steal_at_peak ledger_balanced; do
  grep -q "\"${gate}\": true" "${fig10_json}" || {
    echo "ci: fig10 acceptance boolean ${gate} is not true" >&2; exit 1; }
done

echo "== smoke: bench/overload_live_runtime (one 2x-overload cell, real TCP)"
# Short-window overload smoke: calibrate, then a 0.8x cell (must shed nothing) and a
# 2x cell (zygos must hold goodput while no-shed collapses). The binary exits
# non-zero if any acceptance boolean fails, so `set -e` is the gate; the JSON is
# validated on top. 1200 ms cells, not shorter: the SLO is derived from the 0.8x
# baseline p99, which host noise can inflate 2-3x on an oversubscribed box — the
# no-shed backlog delay (~0.5x elapsed time at 2x offered) must still clearly
# exceed that inflated SLO inside the window or no_shed_collapses goes flaky.
overload_json="${BUILD_DIR}/overload_smoke.json"
rm -f "${overload_json}"
overload_out="$("${BUILD_DIR}/bench/overload_live_runtime" --workers=2 \
  --connections=8 --threads=2 --service-us=1000 --multipliers=0.8,2 \
  --duration-ms=1200 --warmup-ms=150 --seed=7 --json="${overload_json}")" || {
    # Print what the binary got through before the failing boolean killed it —
    # `set -e` on the bare substitution would otherwise swallow every CSV row.
    printf '%s\n' "${overload_out}"
    echo "ci: overload_live_runtime exited non-zero (an acceptance boolean failed)" >&2
    exit 1; }
printf '%s\n' "${overload_out}"
printf '%s\n' "${overload_out}" | grep -q '^zygos,2\.00,' || {
    echo "ci: overload_live_runtime emitted no 2x zygos CSV row" >&2; exit 1; }
if command -v python3 > /dev/null; then
  python3 -m json.tool "${overload_json}" > /dev/null || {
    echo "ci: ${overload_json} is malformed JSON" >&2; exit 1; }
fi
for gate in goodput_at_2x_geq_090_peak no_shed_collapses \
            zero_sheds_below_saturation ledger_balanced; do
  grep -q "\"${gate}\": true" "${overload_json}" || {
    echo "ci: overload acceptance boolean ${gate} is not true" >&2; exit 1; }
done

echo "== smoke: kv_server serve -> chaos_proxy -> open-loop loadgen over real TCP"
# The full degraded-network pipeline as three separate processes: the loadgen dials
# the PROXY port, every byte crosses the injected jitter, and the run must still
# complete cleanly (the loadgen exits non-zero on a dirty run).
"${BUILD_DIR}/examples/kv_server" --mode=serve --port=7411 --workers=2 --keys=5000 &
kv_pid=$!
trap 'kill "${kv_pid}" 2>/dev/null || true' EXIT
sleep 1
"${BUILD_DIR}/examples/chaos_proxy" --listen-port=7412 --upstream-port=7411 \
  --s2c=uniform:50:200 --seed=7 --stats-interval-s=0 &
proxy_pid=$!
trap 'kill "${proxy_pid}" "${kv_pid}" 2>/dev/null || true' EXIT
sleep 1
"${BUILD_DIR}/examples/kv_server" --mode=loadgen --port=7412 --rate=3000 \
  --duration-ms=600 --warmup-ms=200 --connections=4 --threads=2 --keys=5000
kill -TERM "${proxy_pid}"
wait "${proxy_pid}"
kill -TERM "${kv_pid}"
wait "${kv_pid}"
trap - EXIT

echo "== smoke: kv_server serve (uring transport) -> open-loop loadgen over real TCP"
# Same serve->loadgen pipeline on the io_uring backend. Gated on the runtime probe
# (io_uring_setup may be denied by seccomp/container policy): an ineligible host
# prints the skip and stays green, a capable host must pass.
if "${BUILD_DIR}/bench/fig6_live_runtime" --probe-uring; then
  "${BUILD_DIR}/examples/kv_server" --mode=serve --transport=uring --port=7413 \
    --workers=2 --keys=5000 &
  kv_pid=$!
  trap 'kill "${kv_pid}" 2>/dev/null || true' EXIT
  sleep 1
  "${BUILD_DIR}/examples/kv_server" --mode=loadgen --port=7413 --rate=3000 \
    --duration-ms=600 --warmup-ms=200 --connections=4 --threads=2 --keys=5000
  kill -TERM "${kv_pid}"
  wait "${kv_pid}"
  trap - EXIT
else
  echo "ci: skipping uring smoke (io_uring unavailable on this host)"
fi

echo "== smoke: uring feature ladder (per-feature, probe-gated)"
# One in-process demo smoke per granted io_uring feature, each with ONLY that
# feature requested, so a rung-specific regression cannot hide behind the other
# rungs. The probe's second output line carries the per-feature support set
# ("io_uring: features multishot=D sqpoll=D send_zc=D"); a denied feature skips
# green. The smoke asserts the server's own feature-engagement line echoes exactly
# the requested set — a silently-degraded rung fails here, not in a benchmark.
probe_features="$("${BUILD_DIR}/bench/fig6_live_runtime" --probe-uring | sed -n 2p || true)"
run_uring_feature_smoke() {
  local label="$1" ms="$2" sqp="$3" zc="$4"
  if [[ "${probe_features}" == *"${label}=1"* ]]; then
    smoke_out="$("${BUILD_DIR}/examples/kv_server" --mode=demo --transport=uring \
      --uring-multishot="${ms}" --uring-sqpoll="${sqp}" --uring-zc="${zc}" \
      --workers=2 --keys=2000 --requests=3000 --connections=4 --threads=2)"
    printf '%s\n' "${smoke_out}" | grep "io syscalls"
    if ! printf '%s\n' "${smoke_out}" | \
        grep -q "uring features multishot=${ms} sqpoll=${sqp} send_zc=${zc}"; then
      echo "ci: uring ${label} smoke did not engage the requested feature set" >&2
      exit 1
    fi
  else
    echo "ci: skipping uring ${label} smoke (kernel denies ${label})"
  fi
}
if [[ -n "${probe_features}" ]]; then
  run_uring_feature_smoke multishot 1 0 0
  run_uring_feature_smoke sqpoll 0 1 0
  run_uring_feature_smoke send_zc 0 0 1
else
  echo "ci: skipping uring feature smokes (io_uring unavailable on this host)"
fi

echo "== smoke: silo_tpcc serve -> TPC-C open-loop loadgen -> SIGTERM over real TCP"
# The second real workload end to end as two processes: a TPC-C server on a fresh
# port, a seeded wire-protocol loadgen dialing it (exits non-zero on a dirty run or a
# leaked request), then a clean SIGTERM shutdown whose final ledger must balance.
"${BUILD_DIR}/examples/silo_tpcc" --mode=serve --port=7414 --workers=2 \
  --warehouses=1 --scale=tiny &
tpcc_pid=$!
trap 'kill "${tpcc_pid}" 2>/dev/null || true' EXIT
sleep 1
"${BUILD_DIR}/examples/silo_tpcc" --mode=loadgen --port=7414 --rate=2000 \
  --duration-ms=600 --warmup-ms=200 --connections=4 --threads=2 --seed=7
kill -TERM "${tpcc_pid}"
wait "${tpcc_pid}"
trap - EXIT

echo "== warnings-as-errors configure of the transport layer (${BUILD_DIR}-werror)"
cmake -B "${BUILD_DIR}-werror" -S . -DZYGOS_WERROR=ON \
  -DZYGOS_BUILD_BENCH=OFF -DZYGOS_BUILD_EXAMPLES=OFF -DZYGOS_BUILD_TESTS=OFF
cmake --build "${BUILD_DIR}-werror" -j "${JOBS}" --target zygos_runtime

echo "== AddressSanitizer: runtime + loadgen + chaos + transport suites (${BUILD_DIR}-asan)"
# Lifecycle refactors are use-after-free factories: the connection slot table hands
# PCBs to thieves, recycles them behind generation tags and reuses freed flow ids —
# ASan over the runtime + loadgen suites is the gate that a teardown race never
# touches recycled memory. chaos_test rides along: the proxy's kill/stall paths
# destroy connections with chunks still parked in the timing wheel, and its replay
# determinism (SameSeedReplaysIdenticalDelaySchedule) is asserted under ASan too.
# transport_conformance_test runs the same lifecycle battery over all backends —
# including the full uring feature matrix (multishot x sqpoll x send-zc, kernel-
# supported combos only); for uring that is the gate that a kernel-owned completion
# (multishot recv into a buffer-ring slot, SEND_ZC notification, straggler send)
# never lands in freed buffers after a sever or shutdown. overload_test rides along:
# a shed reply is a TX buffer for a request that never reached the handler, and the
# gated-handler test holds a shed in flight across a flow recycle — the exact window
# where a refused event's buffer could be freed twice or leak. tpcc_test + net_test
# ride along for the TPC-C wire service: the consistency battery drives concurrent
# OCC commits through pooled executors (read-set pointers into recycled records), and
# the decode fuzz sweep must prove DecodeTpccRequest never reads out of bounds.
cmake -B "${BUILD_DIR}-asan" -S . -DZYGOS_BUILD_BENCH=OFF -DZYGOS_BUILD_EXAMPLES=OFF \
  -DCMAKE_CXX_FLAGS="-fsanitize=address -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address"
cmake --build "${BUILD_DIR}-asan" -j "${JOBS}" --target runtime_test loadgen_test \
  chaos_test transport_conformance_test overload_test tpcc_test net_test
# Leak checking stays ON; only the by-design thread-pool leak is suppressed
# (scripts/lsan.supp) — a leaked connection or socket wrapper still fails.
# --repeat until-pass:2: ASan slows the whole pipeline severalfold, which puts
# the suites' real-time assertions (deadline-shed budgets, stall deadlines) one
# ambient scheduler stall away from a false positive on an oversubscribed host.
# One retry absorbs a single stall; a deterministic regression fails both runs.
LSAN_OPTIONS="suppressions=$(pwd)/scripts/lsan.supp" \
  ctest --test-dir "${BUILD_DIR}-asan" \
  -R 'runtime_test|loadgen_test|chaos_test|transport_conformance_test|overload_test|tpcc_test|net_test' \
  --output-on-failure -j "${JOBS}" --repeat until-pass:2

echo "CI OK"
