#!/usr/bin/env bash
# Longitudinal benchmark harness (the `BENCH_*.json` contract from bench/README.md).
#
# Runs the fixed trajectory subset — fig8_steal_rate and fig6_latency_throughput — on
# their fixed seeds, parses the stable CSV from stdout, and writes one
# BENCH_<name>.json per binary ({metric, value, unit, commit, params}) so successive
# commits can be compared for regressions in steal-path behaviour and max-load@SLO.
# The DES-side experiments are deterministic for a fixed seed and host-independent,
# so the values are comparable across machines.
#
# Usage:
#   scripts/bench_trajectory.sh [out_dir]       # default out_dir: bench
#   BUILD_DIR=build BENCH_REQUESTS=20000 BENCH_POINTS=6 scripts/bench_trajectory.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT_DIR="${1:-bench}"
REQUESTS="${BENCH_REQUESTS:-20000}"
POINTS="${BENCH_POINTS:-6}"
COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

for bin in fig8_steal_rate fig6_latency_throughput; do
  if [[ ! -x "${BUILD_DIR}/bench/${bin}" ]]; then
    echo "bench_trajectory: ${BUILD_DIR}/bench/${bin} not built (run cmake --build first)" >&2
    exit 1
  fi
done
mkdir -p "${OUT_DIR}"

# --- fig8: peak ZygOS steal rate -------------------------------------------------------
# CSV contract: system,load,throughput_mrps,steals_per_event_pct,ipis
echo "== fig8_steal_rate (requests=${REQUESTS}, points=${POINTS})"
fig8_csv="$("${BUILD_DIR}/bench/fig8_steal_rate" --requests="${REQUESTS}" --points="${POINTS}")"
peak_steal="$(printf '%s\n' "${fig8_csv}" | awk -F, '
  $1 == "ZygOS" && NF >= 4 { found = 1; if ($4 + 0 > max) max = $4 + 0 }
  END { if (found) printf "%.2f", max }')"
if [[ -z "${peak_steal}" ]]; then
  echo "bench_trajectory: no ZygOS rows in fig8 output — the CSV contract changed?" >&2
  exit 1
fi
cat > "${OUT_DIR}/BENCH_fig8_steal_rate.json" <<EOF
{
  "metric": "zygos_peak_steal_rate",
  "value": ${peak_steal},
  "unit": "steals_per_event_pct",
  "commit": "${COMMIT}",
  "params": {"requests": ${REQUESTS}, "points": ${POINTS}, "mean_us": 25, "seed": 51}
}
EOF
echo "   zygos_peak_steal_rate = ${peak_steal} %  -> ${OUT_DIR}/BENCH_fig8_steal_rate.json"

# --- fig6: ZygOS fraction of the theoretical max load at SLO ---------------------------
# Headline contract: "# headline: ZygOS max load L = P% of theoretical T (paper: ...)";
# the first headline is the 10 us exponential case (the paper's §6.1 primary claim).
echo "== fig6_latency_throughput (requests=${REQUESTS}, points=${POINTS})"
fig6_out="$("${BUILD_DIR}/bench/fig6_latency_throughput" --requests="${REQUESTS}" --points="${POINTS}")"
frac="$(printf '%s\n' "${fig6_out}" | sed -nE 's/^# headline: ZygOS max load [0-9.]+ = ([0-9]+)% of theoretical.*/\1/p' | head -1)"
if [[ -z "${frac}" ]]; then
  echo "bench_trajectory: fig6 headline line missing — the stdout contract changed?" >&2
  exit 1
fi
cat > "${OUT_DIR}/BENCH_fig6_latency_throughput.json" <<EOF
{
  "metric": "zygos_frac_of_theoretical_max_load",
  "value": ${frac},
  "unit": "percent",
  "commit": "${COMMIT}",
  "params": {"requests": ${REQUESTS}, "points": ${POINTS}, "distribution": "exponential", "mean_us": 10, "slo": "10x_mean", "seed": 35}
}
EOF
echo "   zygos_frac_of_theoretical_max_load = ${frac} %  -> ${OUT_DIR}/BENCH_fig6_latency_throughput.json"

echo "bench_trajectory OK (commit ${COMMIT})"
