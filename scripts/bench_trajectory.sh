#!/usr/bin/env bash
# Longitudinal benchmark harness (the `BENCH_*.json` contract from bench/README.md).
#
# Runs the fixed trajectory subset — fig8_steal_rate, fig6_latency_throughput and
# micro_dataplane — on their fixed seeds, parses the stable CSV from stdout, and
# writes one BENCH_<name>.json per binary ({metric, value, unit, commit, params}) so
# successive commits can be compared for regressions in steal-path behaviour,
# max-load@SLO and data-plane cost. The DES-side experiments are deterministic for a
# fixed seed and host-independent; micro_dataplane's ns/op is host-dependent but its
# allocs/op (tracked in params) is exact and must stay 0.
#
# Usage:
#   scripts/bench_trajectory.sh [out_dir]       # default out_dir: bench
#   BUILD_DIR=build BENCH_REQUESTS=20000 BENCH_POINTS=6 scripts/bench_trajectory.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT_DIR="${1:-bench}"
REQUESTS="${BENCH_REQUESTS:-20000}"
POINTS="${BENCH_POINTS:-6}"
COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

# Host tunings active during this run (scripts/tune_env.sh state file): stamped into
# every BENCH_*.json so recorded numbers never silently mix tuned and untuned hosts.
TUNE_STATE="${TUNE_STATE:-/tmp/zygos_tune_env.state}"
if [[ -s "${TUNE_STATE}" ]]; then
  ENV_TUNINGS="$(paste -sd, "${TUNE_STATE}")"
else
  ENV_TUNINGS="none"
fi
echo "bench_trajectory: env_tunings=${ENV_TUNINGS}"

# stamp_json <file>: fill in the commit and prepend env_tunings to the params block
# of a binary-written BENCH JSON.
stamp_json() {
  sed -i "s/\"commit\": \"\"/\"commit\": \"${COMMIT}\"/" "$1"
  sed -i "s/\"params\": {/\"params\": {\\n    \"env_tunings\": \"${ENV_TUNINGS}\",/" "$1"
}

for bin in fig8_steal_rate fig6_latency_throughput micro_dataplane fig6_live_runtime \
           churn_live_runtime fanout_chaos overload_live_runtime fig10_live_runtime; do
  if [[ ! -x "${BUILD_DIR}/bench/${bin}" ]]; then
    echo "bench_trajectory: ${BUILD_DIR}/bench/${bin} not built (run cmake --build first)" >&2
    exit 1
  fi
done
mkdir -p "${OUT_DIR}"

# --- fig8: peak ZygOS steal rate -------------------------------------------------------
# CSV contract: system,load,throughput_mrps,steals_per_event_pct,ipis
echo "== fig8_steal_rate (requests=${REQUESTS}, points=${POINTS})"
fig8_csv="$("${BUILD_DIR}/bench/fig8_steal_rate" --requests="${REQUESTS}" --points="${POINTS}")"
peak_steal="$(printf '%s\n' "${fig8_csv}" | awk -F, '
  $1 == "ZygOS" && NF >= 4 { found = 1; if ($4 + 0 > max) max = $4 + 0 }
  END { if (found) printf "%.2f", max }')"
if [[ -z "${peak_steal}" ]]; then
  echo "bench_trajectory: no ZygOS rows in fig8 output — the CSV contract changed?" >&2
  exit 1
fi
cat > "${OUT_DIR}/BENCH_fig8_steal_rate.json" <<EOF
{
  "metric": "zygos_peak_steal_rate",
  "value": ${peak_steal},
  "unit": "steals_per_event_pct",
  "commit": "${COMMIT}",
  "params": {"requests": ${REQUESTS}, "points": ${POINTS}, "mean_us": 25, "seed": 51,
             "env_tunings": "${ENV_TUNINGS}"}
}
EOF
echo "   zygos_peak_steal_rate = ${peak_steal} %  -> ${OUT_DIR}/BENCH_fig8_steal_rate.json"

# --- fig6: ZygOS fraction of the theoretical max load at SLO ---------------------------
# Headline contract: "# headline: ZygOS max load L = P% of theoretical T (paper: ...)";
# the first headline is the 10 us exponential case (the paper's §6.1 primary claim).
echo "== fig6_latency_throughput (requests=${REQUESTS}, points=${POINTS})"
fig6_out="$("${BUILD_DIR}/bench/fig6_latency_throughput" --requests="${REQUESTS}" --points="${POINTS}")"
frac="$(printf '%s\n' "${fig6_out}" | sed -nE 's/^# headline: ZygOS max load [0-9.]+ = ([0-9]+)% of theoretical.*/\1/p' | head -1)"
if [[ -z "${frac}" ]]; then
  echo "bench_trajectory: fig6 headline line missing — the stdout contract changed?" >&2
  exit 1
fi
cat > "${OUT_DIR}/BENCH_fig6_latency_throughput.json" <<EOF
{
  "metric": "zygos_frac_of_theoretical_max_load",
  "value": ${frac},
  "unit": "percent",
  "commit": "${COMMIT}",
  "params": {"requests": ${REQUESTS}, "points": ${POINTS}, "distribution": "exponential", "mean_us": 10, "slo": "10x_mean", "seed": 35, "env_tunings": "${ENV_TUNINGS}"}
}
EOF
echo "   zygos_frac_of_theoretical_max_load = ${frac} %  -> ${OUT_DIR}/BENCH_fig6_latency_throughput.json"

# --- micro_dataplane: ns/op and allocs/op for one echo RPC, string vs pooled -----------
# CSV contract: path,ns_per_op,allocs_per_op with rows `string` and `pooled`.
# Median-of-3 on the speedup (same rationale as fig6_live's --cell-repeats=3): on an
# oversubscribed host the string path's 4 mallocs/op book scheduler stalls into a
# single run's ns/op — observed single-run speedups swing 0.8x-1.5x while the pooled
# ns/op barely moves. The median run discards the one-off in either direction; a
# real fast-path regression shifts all three runs.
echo "== micro_dataplane (requests=200000, median of 3)"
dp_runs=()
dp_speedups=()
for i in 1 2 3; do
  dp_runs[i]="$("${BUILD_DIR}/bench/micro_dataplane" --requests=200000 --warmup=20000)"
  p="$(printf '%s\n' "${dp_runs[i]}" | awk -F, '$1 == "pooled" {print $2}')"
  s="$(printf '%s\n' "${dp_runs[i]}" | awk -F, '$1 == "string" {print $2}')"
  if [[ -z "${p}" || -z "${s}" ]]; then
    echo "bench_trajectory: micro_dataplane rows missing — the CSV contract changed?" >&2
    exit 1
  fi
  dp_speedups[i]="$(awk -v s="${s}" -v p="${p}" 'BEGIN {printf "%.2f", s / p}')"
done
median_i="$(for i in 1 2 3; do echo "${dp_speedups[i]} ${i}"; done | sort -n | awk 'NR == 2 {print $2}')"
dp_csv="${dp_runs[median_i]}"
speedup="${dp_speedups[median_i]}"
pooled_ns="$(printf '%s\n' "${dp_csv}" | awk -F, '$1 == "pooled" {print $2}')"
pooled_allocs="$(printf '%s\n' "${dp_csv}" | awk -F, '$1 == "pooled" {print $3}')"
string_ns="$(printf '%s\n' "${dp_csv}" | awk -F, '$1 == "string" {print $2}')"
string_allocs="$(printf '%s\n' "${dp_csv}" | awk -F, '$1 == "string" {print $3}')"
# The pooled fast path measures 1.2-1.3x the string path on this host; gate well
# below that (1.05) so the trajectory catches a real fast-path regression (the
# pre-inline state was 0.96x) without flaking on run-to-run ns/op jitter.
if awk -v s="${speedup}" 'BEGIN {exit !(s < 1.05)}'; then
  echo "bench_trajectory: pooled data plane (${speedup}x string) lost its edge — small-class fast-path regression?" >&2
  exit 1
fi
dp_json="$(cat <<EOF
{
  "metric": "dataplane_pooled_echo_ns_per_op",
  "value": ${pooled_ns},
  "unit": "ns_per_op",
  "commit": "${COMMIT}",
  "params": {"requests": 200000, "warmup": 20000, "payload": 32,
             "pooled_allocs_per_op": ${pooled_allocs}, "string_ns_per_op": ${string_ns},
             "string_allocs_per_op": ${string_allocs}, "speedup_vs_string": ${speedup},
             "env_tunings": "${ENV_TUNINGS}"}
}
EOF
)"
printf '%s\n' "${dp_json}" > "${OUT_DIR}/BENCH_micro_dataplane.json"
# PR-numbered snapshot: this refactor's acceptance record (pooled vs string).
printf '%s\n' "${dp_json}" > "${OUT_DIR}/BENCH_0003.json"
echo "   dataplane_pooled_echo_ns_per_op = ${pooled_ns} ns (string ${string_ns} ns, ${speedup}x, ${pooled_allocs} allocs/op) -> ${OUT_DIR}/BENCH_micro_dataplane.json"

# --- fig6_live: the LIVE runtime under open-loop load, all transports + uring ladder --
# The binary itself writes the BENCH-contract JSON (src/loadgen/report.h), including
# the acceptance booleans; this script stamps the commit and gates on them.
# Wall-clock latencies are host-dependent; the *relative* curves (monotone-in-load
# p99, stealing <= no-steal at the peak load, uring <= epoll at matched load, uring
# syscalls/request below epoll's, and the io_uring feature ladder's rung-by-rung
# syscall staircase) are the tracked invariants. tcp leads the transport list so the
# calibrated rate list comes from a socket backend and every transport then sweeps
# the same absolute rates (matched-load uring-vs-epoll and rung-vs-rung cells). The
# sleep-mode service keeps the scheduling policies distinguishable on CI hosts with
# fewer hardware threads than workers (see src/loadgen/spin_service.h). A host
# without io_uring drops those legs (the binary prints `# skip:` per rung, likewise
# for rungs whose feature the kernel denies) and every uring boolean holds
# vacuously. params.perf_counters carries per-request cycles/instructions/
# cache-misses when perf_event_open works, with available=false + reason otherwise.
# 3000ms/point: at the lowest swept rate (~1000 rps) a cell needs ~3k completions
# for the p99 to rest on ~30 samples — 1500ms cells made the monotonicity gate a
# coin flip on oversubscribed single-CPU hosts.
LIVE_DURATION_MS="${BENCH_LIVE_DURATION_MS:-3000}"
echo "== fig6_live_runtime (live data plane, tcp+uring ladder+loopback, duration=${LIVE_DURATION_MS}ms/point)"
live_json="${OUT_DIR}/BENCH_fig6_live.json"
# 0.2..0.8 of the calibrated peak (not the default 0.95 top point): calibration is a
# single overload cell whose peak estimate swings ~15% run to run, and the rate list
# comes from the FASTEST backend (tcp) while the slowest (loopback) peaks lower — at
# 0.95 an optimistic calibration pushes cells past saturation, where open-loop p99
# measures queue growth, not the scheduler. 0.8 keeps every transport sub-saturated.
# --cell-repeats=3: median-of-3 per cell (and for the calibration probe). On a host
# where the loadgen and the server share cores, a single scheduler stall books tens
# of ms into one cell's p99 (CO-safe accounting must count it); the median row
# discards the one-off without biasing the curve.
# Transport list = epoll reference, the four io_uring ladder rungs ("uring" is the
# rung-0 baseline with multishot/SQPOLL/SEND_ZC off — the same backend the historic
# uring curve measured), and loopback.
"${BUILD_DIR}/bench/fig6_live_runtime" \
  --transport=tcp,uring,uring+ms,uring+ms+sqp,uring+ms+sqp+zc,loopback \
  --dist=exponential --service-us=300 --service-mode=sleep --workers=2 \
  --connections=16 --load-fractions=0.2,0.4,0.6,0.8 --cell-repeats=3 \
  --duration-ms="${LIVE_DURATION_MS}" --warmup-ms=400 --seed=3 \
  --json="${live_json}"
stamp_json "${live_json}"
if ! grep -q '"zygos_p99_monotone_in_load": true' "${live_json}"; then
  echo "bench_trajectory: live zygos p99 is not monotone in load — noisy host or regression; rerun or investigate" >&2
  exit 1
fi
if ! grep -q '"steal_leq_no_steal_at_peak": true' "${live_json}"; then
  echo "bench_trajectory: stealing did not beat no-steal at the peak load point — regression in the steal path?" >&2
  exit 1
fi
if ! grep -q '"uring_p99_leq_epoll_at_peak": true' "${live_json}"; then
  echo "bench_trajectory: uring p99 exceeded epoll at matched peak load — noisy host or uring regression; rerun or investigate" >&2
  exit 1
fi
if ! grep -q '"uring_syscalls_below_epoll": true' "${live_json}"; then
  echo "bench_trajectory: uring syscalls/request not below epoll — the batched submission path regressed?" >&2
  exit 1
fi
if ! grep -q '"uring_ladder_syscalls_strictly_decreasing": true' "${live_json}"; then
  echo "bench_trajectory: uring ladder syscalls/request did not fall rung by rung (uring -> +ms -> +sqp) — a feature rung stopped engaging?" >&2
  exit 1
fi
if ! grep -q '"uring_full_ladder_syscalls_leq_0p1": true' "${live_json}"; then
  echo "bench_trajectory: full uring ladder (+ms+sqp+zc) above 0.1 syscalls/request — the zero-syscall steady state regressed?" >&2
  exit 1
fi
# PR-numbered snapshots: the live-harness acceptance record (0004), the uring
# transport's syscalls-per-request trajectory record (0007), and the feature-ladder
# zero-syscall steady-state record (0010).
cp "${live_json}" "${OUT_DIR}/BENCH_0004.json"
cp "${live_json}" "${OUT_DIR}/BENCH_0007.json"
cp "${live_json}" "${OUT_DIR}/BENCH_0010.json"
live_p99="$(sed -nE 's/^  "value": ([0-9.]+),$/\1/p' "${live_json}" | head -1)"
echo "   live_zygos_p99_us_at_peak_load = ${live_p99} us  -> ${live_json}"

# --- churn_live: connection churn on the live runtime (flow-table recycling) -----------
# The binary writes the BENCH-contract JSON itself; this script stamps the commit and
# gates on the four acceptance booleans: lifetime connections exceed the fixed table,
# zero capacity refusals, occupancy never exceeds the table, and churn recycling stays
# allocation-free after warmup. Latencies are host-dependent; the booleans are not.
CHURN_DURATION_MS="${BENCH_CHURN_DURATION_MS:-1200}"
echo "== churn_live_runtime (connection churn sweep, duration=${CHURN_DURATION_MS}ms/point)"
churn_json="${OUT_DIR}/BENCH_churn.json"
"${BUILD_DIR}/bench/churn_live_runtime" --rate=2000 --churn-ms=0,160,80,40,20 \
  --duration-ms="${CHURN_DURATION_MS}" --warmup-ms=300 --connections=8 --threads=2 \
  --max-flows=32 --seed=5 --json="${churn_json}"
stamp_json "${churn_json}"
for gate in distinct_conns_exceed_capacity zero_capacity_refusals \
            flat_table_occupancy allocation_free_after_warmup; do
  if ! grep -q "\"${gate}\": true" "${churn_json}"; then
    echo "bench_trajectory: churn acceptance boolean ${gate} is not true — regression in the connection-lifecycle path?" >&2
    exit 1
  fi
done
# PR-numbered snapshot: the connection-lifecycle acceptance record.
cp "${churn_json}" "${OUT_DIR}/BENCH_0005.json"
churn_p99="$(sed -nE 's/^  "value": ([0-9.]+),$/\1/p' "${churn_json}" | head -1)"
echo "   churn_p99_us_at_fastest_churn = ${churn_p99} us  -> ${churn_json}"

# --- fanout_chaos: tail-at-scale amplification through the chaos proxy -----------------
# The binary writes the BENCH-contract JSON itself; this script stamps the commit and
# gates on the three acceptance booleans: the through-proxy logical p99 grows with the
# fan-out width (the max-of-N amplification law), work stealing does not lose to
# no-steal under injected jitter, and every cell ran clean (no lost logical requests).
# Absolute latencies are host-dependent; the amplification RATIO and the steal
# comparison are relative and are the tracked invariants.
FANOUT_DURATION_MS="${BENCH_FANOUT_DURATION_MS:-2500}"
echo "== fanout_chaos (fan-out sweep through the chaos proxy, duration=${FANOUT_DURATION_MS}ms/cell)"
fanout_json="${OUT_DIR}/BENCH_fanout.json"
"${BUILD_DIR}/bench/fanout_chaos" --fanouts=1,2,4,8 --logical-rate=250 \
  --duration-ms="${FANOUT_DURATION_MS}" --warmup-ms=600 --steal-compare=true \
  --seed=11 --json="${fanout_json}"
stamp_json "${fanout_json}"
for gate in p99_amplification_monotone_in_fanout steal_leq_no_steal_under_jitter \
            all_runs_clean; do
  if ! grep -q "\"${gate}\": true" "${fanout_json}"; then
    echo "bench_trajectory: fanout acceptance boolean ${gate} is not true — noisy host or regression in the fan-out/chaos path?" >&2
    exit 1
  fi
done
# PR-numbered snapshot: the chaos-layer acceptance record.
cp "${fanout_json}" "${OUT_DIR}/BENCH_0006.json"
fanout_amp="$(sed -nE 's/^  "value": ([0-9.]+),$/\1/p' "${fanout_json}" | head -1)"
echo "   fanout_p99_amplification = ${fanout_amp} x  -> ${fanout_json}"

# --- overload_live: goodput under overload with deadline shedding + adaptive admission -
# The binary calibrates its own peak, derives the deadline budget from a no-shed
# baseline, sweeps {0.8,1,2,4,10}x across zygos/no-shed configs and writes the
# BENCH-contract JSON itself; this script stamps the commit and gates on the six
# acceptance booleans. Absolute rates are host-dependent; the booleans are all
# calibration-relative (goodput@2x vs the host's own no-overload peak, sheds vs the
# analytic max(0, 1 - 1/m) curve) and are the tracked invariants.
OVERLOAD_DURATION_MS="${BENCH_OVERLOAD_DURATION_MS:-1200}"
echo "== overload_live_runtime (overload sweep, duration=${OVERLOAD_DURATION_MS}ms/cell)"
overload_json="${OUT_DIR}/BENCH_overload.json"
"${BUILD_DIR}/bench/overload_live_runtime" --workers=2 --connections=8 --threads=2 \
  --service-us=1000 --multipliers=0.8,1,2,4,10 \
  --duration-ms="${OVERLOAD_DURATION_MS}" --warmup-ms=300 --seed=1 \
  --json="${overload_json}"
stamp_json "${overload_json}"
for gate in goodput_at_2x_geq_090_peak admitted_p99_bounded_under_overload \
            no_shed_collapses zero_sheds_below_saturation \
            shed_fraction_tracks_analytic ledger_balanced; do
  if ! grep -q "\"${gate}\": true" "${overload_json}"; then
    echo "bench_trajectory: overload acceptance boolean ${gate} is not true — regression in the shedding path?" >&2
    exit 1
  fi
done
# PR-numbered snapshot: the overload-control acceptance record.
cp "${overload_json}" "${OUT_DIR}/BENCH_0008.json"
overload_ratio="$(sed -nE 's/^  "value": ([0-9.]+),$/\1/p' "${overload_json}" | head -1)"
echo "   overload_goodput_ratio_at_2x = ${overload_ratio} x peak  -> ${overload_json}"

# --- fig10_live: Silo/TPC-C as the live workload (zygos vs no-steal vs partitioned) ----
# The binary loads a Silo/TPC-C database behind the runtime, sweeps the three
# scheduling configs over the open-loop TPC-C loadgen and writes the BENCH-contract
# JSON itself; this script stamps the commit and gates on the three acceptance
# booleans: zygos p99 monotone in load, stealing <= no-steal at the peak cell, and an
# exactly balanced transaction ledger (commit+abort+shed+lost == sent, 0 malformed).
# Absolute tps are host-dependent; the booleans are not. --service-pad-us=300 blocks
# each transaction for 300 us before the OCC work, the same trick as fig6_live's
# sleep-mode service: on CI hosts with fewer hardware threads than workers a pure
# CPU-burn workload makes all scheduling policies identical (one core timeshares
# everything), while a blocking pad keeps them distinguishable. Load fractions stop
# at 0.8 of the calibrated peak for the same sub-saturation reason as fig6_live.
# 5000ms/cell (not fig6_live's 3000): TPC-C service times are heavier-tailed than
# the fixed 300 us sleep, so the p99 estimator needs more tail samples — a 3000ms
# cell at the 0.4-peak rate rests its p99 on ~27 samples and the monotonicity gate
# sat within 1% of the 0.8x noise band on a 1-CPU host; 5000ms cells double that.
FIG10_DURATION_MS="${BENCH_FIG10_DURATION_MS:-5000}"
echo "== fig10_live_runtime (live TPC-C sweep, duration=${FIG10_DURATION_MS}ms/cell)"
fig10_json="${OUT_DIR}/BENCH_fig10_live.json"
"${BUILD_DIR}/bench/fig10_live_runtime" --transport=tcp \
  --configs=zygos,no-steal,partitioned --workers=2 --connections=16 --threads=2 \
  --warehouses=1 --scale=tiny --service-pad-us=300 \
  --load-fractions=0.2,0.4,0.6,0.8 --cell-repeats=3 \
  --duration-ms="${FIG10_DURATION_MS}" --warmup-ms=400 --seed=9 \
  --json="${fig10_json}"
stamp_json "${fig10_json}"
if ! grep -q '"zygos_p99_monotone_in_load": true' "${fig10_json}"; then
  echo "bench_trajectory: live TPC-C zygos p99 is not monotone in load — noisy host or regression; rerun or investigate" >&2
  exit 1
fi
if ! grep -q '"steal_leq_no_steal_at_peak": true' "${fig10_json}"; then
  echo "bench_trajectory: stealing did not beat no-steal at the peak TPC-C cell — regression in the steal path?" >&2
  exit 1
fi
if ! grep -q '"ledger_balanced": true' "${fig10_json}"; then
  echo "bench_trajectory: TPC-C ledger did not balance (commit+abort+shed+lost != sent, or malformed > 0)" >&2
  exit 1
fi
# PR-numbered snapshot: the second-workload acceptance record.
cp "${fig10_json}" "${OUT_DIR}/BENCH_0009.json"
fig10_p99="$(sed -nE 's/^  "value": ([0-9.]+),$/\1/p' "${fig10_json}" | head -1)"
echo "   fig10_live_zygos_p99_us_at_peak_load = ${fig10_p99} us  -> ${fig10_json}"

echo "bench_trajectory OK (commit ${COMMIT})"
