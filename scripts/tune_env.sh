#!/usr/bin/env bash
# Best-effort host tuning for low-variance benchmark runs (the knobs ZygOS-class
# measurements care about: frequency governor, turbo, SMT, and core isolation —
# IRQ affinity, unbound-workqueue placement, timer migration, and the SCHED_FIFO
# bandwidth cap). Every knob is optional: on an unprivileged or containerized host
# each one degrades to a printed no-op instead of failing, so harnesses can always
# `scripts/tune_env.sh || true`.
#
# Applied tunings are recorded one-per-line in a state file (default
# /tmp/zygos_tune_env.state, override with TUNE_STATE=...) holding `knob=old>new`
# entries. scripts/restore_env.sh replays the old values; scripts/bench_trajectory.sh
# stamps the active list into every BENCH_*.json params block as "env_tunings", so a
# recorded number can never silently mix tuned and untuned hosts.
#
# Usage: scripts/tune_env.sh            # apply what this host allows
#        TUNE_STATE=/path scripts/tune_env.sh
set -uo pipefail

STATE="${TUNE_STATE:-/tmp/zygos_tune_env.state}"
: > "${STATE}" 2>/dev/null || { echo "tune_env: cannot write ${STATE}" >&2; exit 1; }

applied=0
skipped=0

# try_write <path> <value> <label>: apply one sysfs knob if it exists and we may
# write it; record `label=old>new` on success, print a no-op note otherwise.
# Returns non-zero on a no-op so bulk callers (the per-IRQ loop) can bail early on
# an unprivileged host instead of printing hundreds of identical notes.
try_write() {
  local path="$1" value="$2" label="$3" old
  if [[ ! -f "${path}" ]]; then
    echo "tune_env: no-op ${label} (${path} absent on this host)"
    skipped=$((skipped + 1))
    return 1
  fi
  old="$(cat "${path}" 2>/dev/null || echo '?')"
  if [[ "${old}" == "${value}" ]]; then
    echo "tune_env: ${label} already ${value}"
    return 0
  fi
  if echo "${value}" > "${path}" 2>/dev/null; then
    echo "${label}=${old}>${value}" >> "${STATE}"
    echo "tune_env: ${label}: ${old} -> ${value}"
    applied=$((applied + 1))
    return 0
  fi
  echo "tune_env: no-op ${label} (unprivileged; would set ${path}=${value})"
  skipped=$((skipped + 1))
  return 1
}

# Frequency governor: performance on every policy (DVFS ramp-up is pure latency
# noise at the microsecond scales fig6_live_runtime measures).
for policy in /sys/devices/system/cpu/cpufreq/policy*; do
  [[ -d "${policy}" ]] || continue
  try_write "${policy}/scaling_governor" performance \
    "governor:$(basename "${policy}")"
done

# Turbo boost off: opportunistic frequencies make run-to-run throughput drift.
try_write /sys/devices/system/cpu/intel_pstate/no_turbo 1 no_turbo
try_write /sys/devices/system/cpu/cpufreq/boost 0 boost

# SMT off: sibling-thread interference is the classic tail-latency confounder.
try_write /sys/devices/system/cpu/smt/control off smt

# Core isolation (userspace approximation — true isolcpus is a boot parameter):
# confine kernel housekeeping to CPU0 so the benchmark cores above it stay quiet.
ncpus="$(nproc 2>/dev/null || echo 1)"
if [[ "${ncpus}" -gt 1 ]]; then
  # Hardware IRQs -> CPU0, one state entry per IRQ so restore_env.sh replays the
  # exact old masks. Managed/per-cpu IRQs refuse the write; after a few refusals
  # (unprivileged host) the loop bails instead of narrating every IRQ.
  irq_noop=0
  for irq_dir in /proc/irq/[0-9]*; do
    [[ -e "${irq_dir}/smp_affinity" ]] || continue
    if ! try_write "${irq_dir}/smp_affinity" 1 "irq:$(basename "${irq_dir}")"; then
      irq_noop=$((irq_noop + 1))
      if [[ "${irq_noop}" -ge 4 ]]; then
        echo "tune_env: no-op remaining IRQ affinity (unprivileged or managed IRQs)"
        break
      fi
    fi
  done
  # Unbound-workqueue housekeeping -> CPU0 as well.
  try_write /sys/devices/virtual/workqueue/cpumask 1 wq_cpumask
else
  echo "tune_env: no-op IRQ affinity / workqueue isolation (single-CPU host)"
  skipped=$((skipped + 1))
fi

# Timers fire on the core that armed them — no opportunistic migration onto an
# otherwise-idle benchmark core mid-measurement.
try_write /proc/sys/kernel/timer_migration 0 timer_migration

# SCHED_FIFO unthrottled: the default RT bandwidth cap stalls RT threads 50 ms
# every second — a guaranteed 50 ms tail artifact for any pinned SCHED_FIFO
# benchmark run (and for irq/* kthreads on isolated cores).
try_write /proc/sys/kernel/sched_rt_runtime_us -1 sched_rt_runtime_us

if [[ "${applied}" -eq 0 ]]; then
  echo "tune_env: nothing applied (${skipped} knobs unavailable/unprivileged) — benchmarks run on the untuned host"
else
  echo "tune_env: ${applied} tunings applied, recorded in ${STATE} (restore with scripts/restore_env.sh)"
fi
exit 0
