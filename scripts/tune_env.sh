#!/usr/bin/env bash
# Best-effort host tuning for low-variance benchmark runs (the knobs ZygOS-class
# measurements care about: frequency governor, turbo, and SMT). Every knob is
# optional: on an unprivileged or containerized host each one degrades to a printed
# no-op instead of failing, so harnesses can always `scripts/tune_env.sh || true`.
#
# Applied tunings are recorded one-per-line in a state file (default
# /tmp/zygos_tune_env.state, override with TUNE_STATE=...) holding `knob=old>new`
# entries. scripts/restore_env.sh replays the old values; scripts/bench_trajectory.sh
# stamps the active list into every BENCH_*.json params block as "env_tunings", so a
# recorded number can never silently mix tuned and untuned hosts.
#
# Usage: scripts/tune_env.sh            # apply what this host allows
#        TUNE_STATE=/path scripts/tune_env.sh
set -uo pipefail

STATE="${TUNE_STATE:-/tmp/zygos_tune_env.state}"
: > "${STATE}" 2>/dev/null || { echo "tune_env: cannot write ${STATE}" >&2; exit 1; }

applied=0
skipped=0

# try_write <path> <value> <label>: apply one sysfs knob if it exists and we may
# write it; record `label=old>new` on success, print a no-op note otherwise.
try_write() {
  local path="$1" value="$2" label="$3" old
  if [[ ! -f "${path}" ]]; then
    echo "tune_env: no-op ${label} (${path} absent on this host)"
    skipped=$((skipped + 1))
    return
  fi
  old="$(cat "${path}" 2>/dev/null || echo '?')"
  if [[ "${old}" == "${value}" ]]; then
    echo "tune_env: ${label} already ${value}"
    return
  fi
  if echo "${value}" > "${path}" 2>/dev/null; then
    echo "${label}=${old}>${value}" >> "${STATE}"
    echo "tune_env: ${label}: ${old} -> ${value}"
    applied=$((applied + 1))
  else
    echo "tune_env: no-op ${label} (unprivileged; would set ${path}=${value})"
    skipped=$((skipped + 1))
  fi
}

# Frequency governor: performance on every policy (DVFS ramp-up is pure latency
# noise at the microsecond scales fig6_live_runtime measures).
for policy in /sys/devices/system/cpu/cpufreq/policy*; do
  [[ -d "${policy}" ]] || continue
  try_write "${policy}/scaling_governor" performance \
    "governor:$(basename "${policy}")"
done

# Turbo boost off: opportunistic frequencies make run-to-run throughput drift.
try_write /sys/devices/system/cpu/intel_pstate/no_turbo 1 no_turbo
try_write /sys/devices/system/cpu/cpufreq/boost 0 boost

# SMT off: sibling-thread interference is the classic tail-latency confounder.
try_write /sys/devices/system/cpu/smt/control off smt

if [[ "${applied}" -eq 0 ]]; then
  echo "tune_env: nothing applied (${skipped} knobs unavailable/unprivileged) — benchmarks run on the untuned host"
else
  echo "tune_env: ${applied} tunings applied, recorded in ${STATE} (restore with scripts/restore_env.sh)"
fi
exit 0
