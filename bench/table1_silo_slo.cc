// Table 1 reproduction: Silo/TPC-C maximum load under the SLO, relative speedups, and
// the 99th-percentile latency at ~50%, 75% and 90% of each system's own maximum load.
//
// The paper's Table 1 (SLO = 1000 µs ≈ 5x Silo's 203 µs p99 service time):
//
//   System  Max load@SLO  Speedup  TailLat@50%     TailLat@75%     TailLat@90%
//   Linux   211 KTPS      1.00x    310 µs (1.5x)   335 µs (1.6x)   356 µs (1.8x)
//   IX      267 KTPS      1.26x    379 µs (1.9x)   530 µs (2.6x)   774 µs (3.8x)
//   ZygOS   344 KTPS      1.63x    265 µs (1.3x)   279 µs (1.4x)   323 µs (1.6x)
//
// The parenthesized ratio normalizes the end-to-end tail by the p99 *service* time —
// the hardware-independent shape metric we reproduce. Expect: ZygOS > IX > Linux in max
// load; IX's ratios grow steeply with load (head-of-line blocking); ZygOS and Linux
// stay flat (work conservation).
//
// Usage: table1_silo_slo [--requests=N] [--samples=N] [--quick]
#include <cstdio>
#include <vector>

#include "src/common/distribution.h"
#include "src/common/flags.h"
#include "src/common/histogram.h"
#include "src/common/time_units.h"
#include "src/db/tpcc_driver.h"
#include "src/db/tpcc_loader.h"
#include "src/db/tpcc_txns.h"
#include "src/sysmodel/experiment.h"
#include "src/sysmodel/system_model.h"

namespace zygos {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  bool quick = flags.GetBool("quick", false);
  const auto requests =
      static_cast<uint64_t>(flags.GetInt("requests", quick ? 60'000 : 150'000));
  const auto samples =
      static_cast<uint64_t>(flags.GetInt("samples", quick ? 15'000 : 40'000));

  std::printf("# Table 1: Silo/TPC-C max load @ SLO and tail latency at fractions of it\n");
  Database db;
  LoaderOptions options;
  TpccTables tables = LoadTpcc(db, options);
  TpccWorkload workload(db, tables, options);
  TpccDriver driver(db, workload);
  TpccMeasurement measurement = driver.Measure(samples, samples / 10, /*seed=*/113);
  EmpiricalDistribution measured = TpccMixDistribution(measurement);
  // Rescaled to the paper's reported 33 µs mix mean (see fig10b_silo_latency.cc).
  EmpiricalDistribution service = measured.RescaledToMean(33 * kMicrosecond);

  LatencyHistogram service_hist;
  double rescale = 33.0 * kMicrosecond / measured.MeanNanos();
  for (Nanos s : measurement.mix) {
    service_hist.Record(static_cast<Nanos>(static_cast<double>(s) * rescale));
  }
  const Nanos p99_service = service_hist.P99();
  const Nanos slo = 5 * p99_service;
  std::printf("# p99 service time %.1f us -> SLO %.1f us (the paper's 5x ratio)\n",
              ToMicros(p99_service), ToMicros(slo));

  struct SystemConfig {
    const char* label;
    SystemKind kind;
  };
  const std::vector<SystemConfig> systems = {
      {"Linux", SystemKind::kLinuxFloating},
      {"IX", SystemKind::kIx},
      {"ZygOS", SystemKind::kZygos},
  };

  SystemRunParams params;
  params.num_requests = requests;
  params.warmup = requests / 10;
  params.seed = 127;
  // Paper-implied Linux overhead for networked TPC-C (see fig10b_silo_latency.cc):
  // 16 cores / 211 KTPS − 33 µs service ≈ 43 µs per request.
  SystemRunParams linux_params = params;
  linux_params.costs.linux_floating_per_request = 42'800;

  // KTPS at a given offered-load fraction.
  auto ktps_at = [&](double load) { return load * 16.0 / service.MeanNanos() * 1e6; };

  double linux_max = 0.0;
  std::printf(
      "\nsystem,max_load_ktps,speedup_vs_linux,p99@50%%_us,ratio50,p99@75%%_us,ratio75,"
      "p99@90%%_us,ratio90\n");
  for (const auto& system : systems) {
    const SystemRunParams& system_params =
        system.kind == SystemKind::kLinuxFloating ? linux_params : params;
    double max_load = MaxLoadAtSlo(system.kind, system_params, service, slo);
    if (system.kind == SystemKind::kLinuxFloating) {
      linux_max = max_load;
    }
    double fractions[] = {0.50, 0.75, 0.90};
    Nanos p99s[3] = {0, 0, 0};
    for (int i = 0; i < 3; ++i) {
      SystemRunParams point = system_params;
      point.load = max_load * fractions[i];
      auto result = RunSystemModel(system.kind, point, service);
      p99s[i] = result.latency.P99();
    }
    std::printf("%s,%.0f,%.2fx,%.0f,(%.1fx),%.0f,(%.1fx),%.0f,(%.1fx)\n", system.label,
                ktps_at(max_load), linux_max > 0 ? max_load / linux_max : 1.0,
                ToMicros(p99s[0]), static_cast<double>(p99s[0]) / static_cast<double>(p99_service),
                ToMicros(p99s[1]), static_cast<double>(p99s[1]) / static_cast<double>(p99_service),
                ToMicros(p99s[2]), static_cast<double>(p99s[2]) / static_cast<double>(p99_service));
  }
  return 0;
}

}  // namespace
}  // namespace zygos

int main(int argc, char** argv) { return zygos::Main(argc, argv); }
