// Figure 9 reproduction: memcached under the ETC and USR workloads — p99 latency vs
// throughput for Linux, IX B=1, IX B=64 and ZygOS, with 4-deep client pipelining.
//
// Methodology (mirrors the paper's two-step approach for real applications): the
// in-repo KV store is populated and its per-operation service times are *measured* on
// this host; the resulting empirical distribution drives the system models. The paper's
// findings to reproduce (§6.2):
//   - ZygOS and IX both clearly outperform Linux;
//   - ZygOS beats IX with batching disabled (B=1) at the 500 µs SLO;
//   - IX with adaptive batching (B=64) reaches the highest throughput — batching is the
//     one sweeping simplification ZygOS gives up (RX-side batching only);
//   - ZygOS's curve is shaped differently: implicit per-flow batching of pipelined
//     requests raises throughput at a tail-latency cost.
//
// Usage: fig9_memcached [--requests=N] [--points=P] [--samples=S] [--quick]
#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/distribution.h"
#include "src/common/flags.h"
#include "src/common/time_units.h"
#include "src/kvstore/service.h"
#include "src/kvstore/workload.h"
#include "src/sysmodel/experiment.h"
#include "src/sysmodel/system_model.h"

namespace zygos {
namespace {

struct SystemConfig {
  const char* label;
  SystemKind kind;
  int batch_bound;
  // Top of the offered-load sweep, as a fraction of the zero-overhead ideal. Linux's
  // serialized shared-pool path saturates near 1.7 MRPS on sub-µs tasks — far below
  // the dataplanes — so its sweep must cover the low-load region to show its real
  // capacity under the SLO (cf. Fig. 9's Linux curve topping out early).
  double max_load;
};

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  bool quick = flags.GetBool("quick", false);
  const auto requests =
      static_cast<uint64_t>(flags.GetInt("requests", quick ? 60'000 : 200'000));
  const int points = static_cast<int>(flags.GetInt("points", quick ? 8 : 14));
  const int samples = static_cast<int>(flags.GetInt("samples", quick ? 20'000 : 100'000));

  const std::vector<SystemConfig> systems = {
      {"Linux", SystemKind::kLinuxFloating, 1, 0.10},
      {"IX B=1", SystemKind::kIx, 1, 0.98},
      {"IX B=64", SystemKind::kIx, 64, 0.98},
      {"ZygOS", SystemKind::kZygos, 1, 0.98},
  };

  std::printf("# Figure 9: memcached p99 latency vs throughput (SLO = 500 us)\n");
  std::printf("# service times measured from the in-repo KV store on this host\n");

  for (auto spec : {KvWorkloadSpec::Etc(), KvWorkloadSpec::Usr()}) {
    // Step 1: measure the real application's service-time distribution.
    KvService service;
    KvWorkload workload(spec, /*seed=*/17);
    workload.Populate(service);
    EmpiricalDistribution service_dist(workload.MeasureServiceTimes(service, samples));
    std::printf("\n## workload=%s mean_service_us=%.3f\n", spec.Name(),
                ToMicros(static_cast<Nanos>(service_dist.MeanNanos())));
    std::printf("system,load,throughput_mrps,p50_us,p99_us\n");

    // Step 2: drive the system models with it, 4-deep pipelining as in the paper.
    constexpr Nanos kSlo = 500 * kMicrosecond;
    std::string summary;
    for (const auto& system : systems) {
      SystemRunParams params;
      params.num_requests = requests;
      params.warmup = requests / 10;
      params.seed = 91;
      params.pipeline_depth = 4;
      params.batch_bound = system.batch_bound;
      auto sweep = LatencyThroughputSweep(system.kind, params, service_dist,
                                          EvenLoads(points, system.max_load));
      double best_mrps_at_slo = 0.0;
      for (const auto& point : sweep) {
        std::printf("%s,%.3f,%.4f,%.1f,%.1f\n", system.label, point.load,
                    point.throughput_rps / 1e6, ToMicros(point.p50), ToMicros(point.p99));
        if (point.p99 <= kSlo) {
          best_mrps_at_slo = std::max(best_mrps_at_slo, point.throughput_rps / 1e6);
        }
      }
      char line[128];
      std::snprintf(line, sizeof(line), "#   %-8s %.2f MRPS\n", system.label,
                    best_mrps_at_slo);
      summary += line;
    }
    std::printf("# max throughput meeting the 500 us SLO (%s):\n%s", spec.Name(),
                summary.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace zygos

int main(int argc, char** argv) { return zygos::Main(argc, argv); }
