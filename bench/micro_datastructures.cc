// Microbenchmarks (google-benchmark) for the data structures on the runtime's hot
// paths: locks, rings, the shuffle layer, doorbells, frame parsing, RSS hashing,
// histograms, RNG, the KV hash table and single-threaded OCC transactions. These
// ground the cost-model constants in DESIGN.md ("shuffle enqueue ~80 ns" etc.) against
// what this host actually measures.
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/concurrency/doorbell.h"
#include "src/concurrency/mpmc_queue.h"
#include "src/concurrency/spinlock.h"
#include "src/concurrency/spsc_ring.h"
#include "src/concurrency/worksteal_deque.h"
#include "src/core/shuffle_layer.h"
#include "src/db/database.h"
#include "src/db/tpcc_loader.h"
#include "src/db/tpcc_txns.h"
#include "src/db/txn.h"
#include "src/hw/rss.h"
#include "src/kvstore/hash_table.h"
#include "src/net/message.h"
#include "src/net/pcb.h"

namespace zygos {
namespace {

void BM_SpinlockLockUnlock(benchmark::State& state) {
  Spinlock lock;
  for (auto _ : state) {
    lock.Lock();
    lock.Unlock();
  }
}
BENCHMARK(BM_SpinlockLockUnlock);

void BM_SpinlockTryLock(benchmark::State& state) {
  Spinlock lock;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lock.TryLock());
    lock.Unlock();
  }
}
BENCHMARK(BM_SpinlockTryLock);

void BM_SpscRingPushPop(benchmark::State& state) {
  SpscRing<uint64_t> ring(1024);
  uint64_t i = 0;
  for (auto _ : state) {
    ring.TryPush(i++);
    benchmark::DoNotOptimize(ring.TryPop());
  }
}
BENCHMARK(BM_SpscRingPushPop);

void BM_MpmcQueuePushPop(benchmark::State& state) {
  MpmcQueue<uint64_t> queue(1024);
  uint64_t i = 0;
  for (auto _ : state) {
    queue.TryPush(i++);
    benchmark::DoNotOptimize(queue.TryPop());
  }
}
BENCHMARK(BM_MpmcQueuePushPop);

// Chase-Lev owner path vs. the spinlock'd shuffle queue (BM_ShuffleLocalCycle): the
// classic application-level work-stealing substrate as a comparison point.
void BM_WorkstealDequePushPop(benchmark::State& state) {
  WorkstealDeque<uint64_t> deque(1024);
  uint64_t i = 0;
  for (auto _ : state) {
    deque.PushBottom(i++);
    benchmark::DoNotOptimize(deque.PopBottom());
  }
}
BENCHMARK(BM_WorkstealDequePushPop);

void BM_WorkstealDequeSteal(benchmark::State& state) {
  WorkstealDeque<uint64_t> deque(1024);
  uint64_t i = 0;
  for (auto _ : state) {
    deque.PushBottom(i++);
    benchmark::DoNotOptimize(deque.Steal());
  }
}
BENCHMARK(BM_WorkstealDequeSteal);

void BM_DoorbellRingDrain(benchmark::State& state) {
  Doorbell doorbell;
  for (auto _ : state) {
    doorbell.Ring(IpiReason::kRemoteSyscalls);
    benchmark::DoNotOptimize(doorbell.Drain());
  }
}
BENCHMARK(BM_DoorbellRingDrain);

// The shuffle layer's local path: notify (idle->ready, enqueue) + dequeue
// (ready->busy) + complete (busy->idle). This is the "shuffle enqueue/dequeue ~80 ns"
// entry of the cost model.
void BM_ShuffleLocalCycle(benchmark::State& state) {
  ShuffleLayer shuffle(4);
  Pcb pcb(/*flow_id=*/0, /*home_core=*/0);
  for (auto _ : state) {
    pcb.PushEvent(PcbEvent{});
    shuffle.NotifyPending(&pcb);
    Pcb* claimed = shuffle.DequeueLocal(0);
    benchmark::DoNotOptimize(claimed);
    claimed->PopEvent();
    shuffle.CompleteExecution(claimed);
  }
}
BENCHMARK(BM_ShuffleLocalCycle);

// The steal path: remote trylock + pop + ownership transfer ("steal ~500 ns" entry).
void BM_ShuffleStealCycle(benchmark::State& state) {
  ShuffleLayer shuffle(4);
  Pcb pcb(/*flow_id=*/0, /*home_core=*/0);
  for (auto _ : state) {
    pcb.PushEvent(PcbEvent{});
    shuffle.NotifyPending(&pcb);
    Pcb* stolen = shuffle.TrySteal(/*thief_core=*/2, /*victim_core=*/0);
    benchmark::DoNotOptimize(stolen);
    stolen->PopEvent();
    shuffle.CompleteExecution(stolen);
  }
}
BENCHMARK(BM_ShuffleStealCycle);

void BM_FrameParserRoundTrip(benchmark::State& state) {
  std::string wire;
  EncodeMessage(Message{42, std::string(64, 'x')}, wire);
  FrameParser parser;
  for (auto _ : state) {
    parser.Feed(wire.data(), wire.size());
    benchmark::DoNotOptimize(parser.TakeMessages());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * wire.size()));
}
BENCHMARK(BM_FrameParserRoundTrip);

void BM_RssHomeLookup(benchmark::State& state) {
  RssTable rss(128, 16);
  uint64_t flow = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rss.HomeCoreOf(flow++));
  }
}
BENCHMARK(BM_RssHomeLookup);

void BM_HistogramRecord(benchmark::State& state) {
  LatencyHistogram histogram;
  Rng rng(1);
  for (auto _ : state) {
    histogram.Record(static_cast<Nanos>(rng.NextBounded(1'000'000)));
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramQuantile(benchmark::State& state) {
  LatencyHistogram histogram;
  Rng rng(1);
  for (int i = 0; i < 100'000; ++i) {
    histogram.Record(static_cast<Nanos>(rng.NextBounded(1'000'000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram.Quantile(0.99));
  }
}
BENCHMARK(BM_HistogramQuantile);

void BM_RngExponential(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextExponential(10'000.0));
  }
}
BENCHMARK(BM_RngExponential);

void BM_KvHashTableGet(benchmark::State& state) {
  HashTable table(1 << 16);
  for (int i = 0; i < 10'000; ++i) {
    table.Set("key-" + std::to_string(i), std::string(32, 'v'));
  }
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.Get("key-" + std::to_string(rng.NextBounded(10'000))));
  }
}
BENCHMARK(BM_KvHashTableGet);

void BM_KvHashTableSet(benchmark::State& state) {
  HashTable table(1 << 16);
  Rng rng(3);
  std::string value(32, 'v');
  for (auto _ : state) {
    table.Set("key-" + std::to_string(rng.NextBounded(10'000)), value);
  }
}
BENCHMARK(BM_KvHashTableSet);

void BM_OccReadOnlyTxn(benchmark::State& state) {
  Database db;
  TableId table = db.CreateTable("t");
  {
    TxnExecutor executor(db);
    executor.Run([&](Transaction& txn) {
      for (int i = 0; i < 100; ++i) {
        txn.Write(table, "k" + std::to_string(i), std::string(64, 'v'));
      }
      return true;
    });
  }
  uint64_t last = 0;
  Rng rng(5);
  for (auto _ : state) {
    Transaction txn(db);
    benchmark::DoNotOptimize(
        txn.Read(table, "k" + std::to_string(rng.NextBounded(100))));
    benchmark::DoNotOptimize(txn.Commit(&last));
  }
}
BENCHMARK(BM_OccReadOnlyTxn);

void BM_OccReadModifyWriteTxn(benchmark::State& state) {
  Database db;
  TableId table = db.CreateTable("t");
  {
    TxnExecutor executor(db);
    executor.Run([&](Transaction& txn) {
      for (int i = 0; i < 100; ++i) {
        txn.Write(table, "k" + std::to_string(i), std::string(64, 'v'));
      }
      return true;
    });
  }
  uint64_t last = 0;
  Rng rng(5);
  for (auto _ : state) {
    Transaction txn(db);
    std::string key = "k" + std::to_string(rng.NextBounded(100));
    auto value = txn.Read(table, key);
    txn.Write(table, key, *value);
    benchmark::DoNotOptimize(txn.Commit(&last));
  }
}
BENCHMARK(BM_OccReadModifyWriteTxn);

void BM_TpccNewOrder(benchmark::State& state) {
  Database db;
  LoaderOptions options = LoaderOptions::Tiny(1);
  options.items = 1000;
  options.customers_per_district = 300;
  options.initial_orders_per_district = 300;
  TpccTables tables = LoadTpcc(db, options);
  TpccWorkload workload(db, tables, options);
  TxnExecutor executor(db);
  TpccRandom random(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload.NewOrder(executor, random));
  }
}
BENCHMARK(BM_TpccNewOrder);

void BM_TpccPayment(benchmark::State& state) {
  Database db;
  LoaderOptions options = LoaderOptions::Tiny(1);
  options.items = 1000;
  options.customers_per_district = 300;
  options.initial_orders_per_district = 300;
  TpccTables tables = LoadTpcc(db, options);
  TpccWorkload workload(db, tables, options);
  TxnExecutor executor(db);
  TpccRandom random(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload.Payment(executor, random));
  }
}
BENCHMARK(BM_TpccPayment);

}  // namespace
}  // namespace zygos

BENCHMARK_MAIN();
