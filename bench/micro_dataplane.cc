// Data-plane microbenchmark: ns/op and heap allocs/op for one echo RPC through the
// framing layer — the pre-refactor string-of-strings path vs the pooled zero-copy
// path (src/common/buffer_pool.h + src/net/message.h).
//
// Each "op" is one request's full framing life: encode the request frame, deliver it
// as a segment, reassemble it in the parser, hand the payload to an echo handler,
// and build the TX response frame. The string path replicates the old data plane
// faithfully (fresh request string, parser append/erase buffer, payload copy,
// response string, TX scratch encode); the pooled path is the current one (pooled
// frame, aliasing view, ResponseBuilder in place).
//
// Heap allocations are counted by overriding the global operator new/delete in this
// binary — pool slab growth is counted too, which is the point: after warmup the
// pooled path must show 0 allocs/op while the string path pays several.
//
// Flags: [--requests=200000] [--warmup=20000] [--payload=32] [--seed ignored]
// Output: CSV `path,ns_per_op,allocs_per_op` plus a `# headline:` line
// (the BENCH_*.json contract consumed by scripts/bench_trajectory.sh).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/net/message.h"

// --- Global allocation counter ---------------------------------------------------------

namespace {
std::atomic<uint64_t> g_allocs{0};
}  // namespace

void* operator new(size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new(size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<size_t>(align),
                                   (size + static_cast<size_t>(align) - 1) /
                                       static_cast<size_t>(align) *
                                       static_cast<size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace zygos {
namespace {

// Faithful replica of the pre-refactor parser (string accumulation buffer, payload
// copied out per message, front-erase per frame) — the baseline being measured.
class LegacyFrameParser {
 public:
  void Feed(const char* data, size_t len) {
    buffer_.append(data, len);
    while (buffer_.size() >= kFrameHeaderSize) {
      uint32_t payload_len;
      std::memcpy(&payload_len, buffer_.data(), 4);
      size_t frame = kFrameHeaderSize + payload_len;
      if (buffer_.size() < frame) {
        break;
      }
      Message msg;
      std::memcpy(&msg.request_id, buffer_.data() + 4, 8);
      msg.payload.assign(buffer_.data() + kFrameHeaderSize, payload_len);
      messages_.push_back(std::move(msg));
      buffer_.erase(0, frame);
    }
  }
  std::vector<Message> TakeMessages() {
    std::vector<Message> out;
    out.swap(messages_);
    return out;
  }

 private:
  std::string buffer_;
  std::vector<Message> messages_;
};

struct PathResult {
  double ns_per_op = 0;
  double allocs_per_op = 0;
  uint64_t checksum = 0;  // defeats dead-code elimination; printed as a comment
};

uint64_t Mix(uint64_t checksum, std::string_view bytes) {
  for (char c : bytes) {
    checksum = checksum * 1099511628211ULL + static_cast<unsigned char>(c);
  }
  return checksum;
}

// One echo RPC through the old data plane: every layer boundary is a string.
PathResult RunStringPath(uint64_t requests, uint64_t warmup,
                         const std::string& payload) {
  LegacyFrameParser parser;
  std::string tx_scratch;
  PathResult result;
  uint64_t t0 = 0;
  uint64_t alloc0 = 0;
  auto clock_start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < warmup + requests; ++i) {
    if (i == warmup) {
      alloc0 = g_allocs.load(std::memory_order_relaxed);
      clock_start = std::chrono::steady_clock::now();
      t0 = 1;
    }
    (void)t0;
    // Client/ingress: fresh frame string, copied into the "segment".
    std::string frame;
    EncodeMessage(i, payload, frame);
    std::string segment = std::move(frame);
    // Netstack: append into the parser buffer, copy the payload out.
    parser.Feed(segment.data(), segment.size());
    for (Message& msg : parser.TakeMessages()) {
      // Handler: materialize the request, return a response string.
      std::string request = std::move(msg.payload);
      std::string response = request;  // echo
      // TX: encode header + payload into the scratch frame.
      tx_scratch.clear();
      EncodeMessage(msg.request_id, response, tx_scratch);
      result.checksum = Mix(result.checksum, tx_scratch);
    }
  }
  auto elapsed = std::chrono::steady_clock::now() - clock_start;
  uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - alloc0;
  result.ns_per_op =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
      static_cast<double>(requests);
  result.allocs_per_op = static_cast<double>(allocs) / static_cast<double>(requests);
  return result;
}

// One echo RPC through the pooled data plane: pooled frame in, aliasing view,
// response built in place in the pooled TX frame.
PathResult RunPooledPath(uint64_t requests, uint64_t warmup,
                         const std::string& payload) {
  FrameParser parser;
  std::vector<MessageView> views;
  PathResult result;
  uint64_t alloc0 = 0;
  auto clock_start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < warmup + requests; ++i) {
    if (i == warmup) {
      alloc0 = g_allocs.load(std::memory_order_relaxed);
      clock_start = std::chrono::steady_clock::now();
    }
    // Client/ingress: one pooled frame is the segment.
    IoBuf segment = EncodeFrame(i, payload);
    // Netstack: views alias the segment; no copy.
    parser.Feed(segment, segment.view());
    views.clear();
    parser.TakeViewsInto(views);
    for (MessageView& view : views) {
      // Handler writes the echo straight into the pooled TX frame.
      ResponseBuilder builder(view.payload.size());
      builder.Append(view.payload);
      IoBuf tx = builder.Finish(view.request_id);
      result.checksum = Mix(result.checksum, tx.view());
    }
  }
  auto elapsed = std::chrono::steady_clock::now() - clock_start;
  uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - alloc0;
  result.ns_per_op =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
      static_cast<double>(requests);
  result.allocs_per_op = static_cast<double>(allocs) / static_cast<double>(requests);
  return result;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto requests = static_cast<uint64_t>(flags.GetInt("requests", 200'000));
  const auto warmup = static_cast<uint64_t>(flags.GetInt("warmup", 20'000));
  const auto payload_size = static_cast<size_t>(flags.GetInt("payload", 32));
  const std::string payload(payload_size, 'x');

  std::printf("# micro_dataplane: %llu ops (+%llu warmup), %zu-byte echo payload\n",
              static_cast<unsigned long long>(requests),
              static_cast<unsigned long long>(warmup), payload_size);
  // String first, pooled second; order is irrelevant to the pooled path's steady
  // state (its pools warm during its own warmup phase).
  PathResult str = RunStringPath(requests, warmup, payload);
  PathResult pooled = RunPooledPath(requests, warmup, payload);
  if (str.checksum != pooled.checksum) {
    std::fprintf(stderr, "micro_dataplane: paths disagree on the bytes produced "
                 "(%llx vs %llx)\n",
                 static_cast<unsigned long long>(str.checksum),
                 static_cast<unsigned long long>(pooled.checksum));
    return 1;
  }
  std::printf("path,ns_per_op,allocs_per_op\n");
  std::printf("string,%.1f,%.3f\n", str.ns_per_op, str.allocs_per_op);
  std::printf("pooled,%.1f,%.3f\n", pooled.ns_per_op, pooled.allocs_per_op);
  double speedup = pooled.ns_per_op > 0 ? str.ns_per_op / pooled.ns_per_op : 0.0;
  std::printf("# headline: pooled %.1f ns/op %.3f allocs/op vs string %.1f ns/op "
              "%.3f allocs/op (%.2fx)\n",
              pooled.ns_per_op, pooled.allocs_per_op, str.ns_per_op,
              str.allocs_per_op, speedup);
  return 0;
}

}  // namespace
}  // namespace zygos

int main(int argc, char** argv) { return zygos::Main(argc, argv); }
