// Fig. 6 on the LIVE runtime: p99 latency vs offered load for the real-thread ZygOS
// data plane (src/runtime) under an open-loop, coordinated-omission-safe generator
// (src/loadgen) — the measured counterpart of the model-driven fig6_latency_throughput.
//
// Sweeps ascending load points for each requested runtime ablation:
//   zygos        full design (stealing + doorbells)
//   no-steal     RuntimeOptions::enable_stealing = false
//   no-ipi       RuntimeOptions::enable_doorbells = false
//   partitioned  RuntimeMode::kPartitioned (the shared-nothing IX baseline)
// and prints one CSV row per (config, load) cell; `--json=PATH` additionally writes
// the BENCH-contract report (src/loadgen/report.h) with the acceptance booleans
// scripts/ci.sh and scripts/bench_trajectory.sh grep.
//
// Load points come from `--rates` (explicit rps list) or, by default, from a
// calibration probe: one deliberately overloaded run measures the peak sustainable
// throughput, and `--load-fractions` of that peak become the sweep. The service is
// the synthetic spin service (src/loadgen/spin_service.h); on hosts with fewer
// hardware threads than workers use `--service-mode=sleep` (see that header).
//
// `--transport` takes a comma-separated list drawn from loopback|tcp|uring plus the
// io_uring feature-ladder rungs uring+ms|uring+ms+sqp|uring+ms+sqp+zc ("uring" is the
// rung-0 baseline: multishot/SQPOLL/SEND_ZC all off, i.e. the re-arm singleshot +
// plain-send path); every requested transport sweeps the SAME ascending rate list
// (calibrated once, on the first transport), so uring-vs-epoll and rung-vs-rung
// comparisons happen at matched load. `--uring-ladder` is shorthand for
// `--transport=tcp,uring,uring+ms,uring+ms+sqp,uring+ms+sqp+zc`. Socket transports
// additionally report syscalls_per_req (Transport::IoSyscalls over completed
// requests) — the ladder's headline, stepping from epoll's ~2/req through batched
// uring's ~0.7 toward ~0 with SQPOLL. A host without io_uring drops the uring legs
// with a printed `# skip:` note (exit 0 when nothing remains), and a rung whose
// feature the kernel denies is likewise skipped, not silently degraded;
// `--probe-uring` reports availability and the per-feature support set (exit 0/1) so
// harnesses can decide before committing to a sweep.
//
// Usage: fig6_live_runtime [--transport=loopback|tcp|uring|uring+ms|...[,...]]
//   [--uring-ladder] [--workers=N]
//   [--connections=N] [--threads=N] [--arrivals=poisson|fixed] [--dist=NAME]
//   [--service-us=F] [--service-mode=spin|sleep] [--configs=a,b,...]
//   [--rates=r1,r2,...] [--load-fractions=f1,f2,...] [--calibrate-rate=R]
//   [--cell-repeats=N] [--duration-ms=N] [--warmup-ms=N] [--payload=N] [--seed=N]
//   [--skew=BOOL] [--json=PATH] [--probe-uring]
//
// `--cell-repeats=N` (default 1) measures every cell N times and reports the
// median-p99 row (and calibrates from the median peak estimate) — the standard
// defense against one-off scheduler stalls on shared/oversubscribed hosts.
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/distribution.h"
#include "src/common/flags.h"
#include "src/hw/perf_counters.h"
#include "src/common/time_units.h"
#include "src/loadgen/arrival.h"
#include "src/loadgen/loadgen.h"
#include "src/loadgen/report.h"
#include "src/loadgen/spin_service.h"
#include "src/loadgen/tcp_loadgen.h"
#include "src/runtime/runtime.h"
#include "src/runtime/socket_transport.h"
#include "src/runtime/tcp_transport.h"
#include "src/runtime/uring_transport.h"

namespace zygos {
namespace {

constexpr const char* kUsage =
    "usage: fig6_live_runtime [--transport=loopback|tcp|uring|uring+ms|uring+ms+sqp|"
    "uring+ms+sqp+zc[,...]]\n"
    "  [--uring-ladder] [--workers=N]\n"
    "  [--connections=N] [--threads=N] [--arrivals=poisson|fixed] [--dist=NAME]\n"
    "  [--service-us=F] [--service-mode=spin|sleep] [--configs=zygos,no-steal,...]\n"
    "  [--rates=r1,r2,...] [--load-fractions=f1,f2,...] [--calibrate-rate=R]\n"
    "  [--cell-repeats=N] [--duration-ms=N] [--warmup-ms=N] [--payload=N]\n"
    "  [--seed=N] [--skew=BOOL] [--json=PATH] [--probe-uring]";

struct Config {
  std::string name;
  RuntimeMode mode = RuntimeMode::kZygos;
  bool stealing = true;
  bool doorbells = true;
};

std::optional<Config> ParseConfig(const std::string& name) {
  if (name == "zygos") {
    return Config{name, RuntimeMode::kZygos, true, true};
  }
  if (name == "no-steal") {
    return Config{name, RuntimeMode::kZygos, false, true};
  }
  if (name == "no-ipi") {
    return Config{name, RuntimeMode::kZygos, true, false};
  }
  if (name == "partitioned") {
    return Config{name, RuntimeMode::kPartitioned, false, false};
  }
  return std::nullopt;
}

// io_uring feature-ladder rung encoded in a transport name. Rung 0 ("uring") turns
// every ladder feature OFF — the re-arm singleshot + plain-send baseline — so the
// historical "uring" curve (and the uring-vs-epoll predicates keyed on it) keep
// measuring the same thing; later rungs add features cumulatively.
struct UringRung {
  bool multishot = false;
  bool sqpoll = false;
  bool send_zc = false;
};

std::optional<UringRung> ParseUringRung(const std::string& name) {
  if (name == "uring") {
    return UringRung{false, false, false};
  }
  if (name == "uring+ms") {
    return UringRung{true, false, false};
  }
  if (name == "uring+ms+sqp") {
    return UringRung{true, true, false};
  }
  if (name == "uring+ms+sqp+zc") {
    return UringRung{true, true, true};
  }
  return std::nullopt;
}

// Empty when the kernel grants everything the rung requests; otherwise the name of
// the first denied feature (for the `# skip:` note). A rung a kernel cannot serve is
// dropped from the sweep rather than silently degraded — a ladder column must
// measure the feature it is named after.
std::string RungDenied(const UringRung& rung) {
  const UringProbe& probe = ProbeUring();
  if (rung.multishot && !(probe.buf_ring && probe.multishot)) {
    return "multishot recv / provided-buffer ring";
  }
  if (rung.sqpoll && !probe.sqpoll) {
    return "SQPOLL";
  }
  if (rung.send_zc && !probe.send_zc) {
    return "SEND_ZC";
  }
  return "";
}

struct Experiment {
  std::string transport;  // "loopback" | "tcp" | "uring[+rungs]" (one cell's backend)
  int workers = 2;
  int connections = 8;
  int threads = 2;
  ArrivalKind arrivals = ArrivalKind::kPoisson;
  std::shared_ptr<const ServiceTimeDistribution> service;
  ServiceMode service_mode = ServiceMode::kSpin;
  Nanos duration = 0;
  Nanos warmup = 0;
  size_t payload = 32;
  uint64_t seed = 1;
  bool skew = true;
};

// Per-request hardware-counter rates from the cell's summed worker counters. The
// denominator is every completion of the run (warmup included) — like
// syscalls_per_req, a steady-state cost ratio, not a window measurement.
void FillPerfRates(LivePoint& point, const WorkerStats& stats, uint64_t completed) {
  if (stats.perf_workers == 0 || completed == 0) {
    return;  // perf_event_open denied (or an idle cell): rates stay "not measured"
  }
  point.perf_valid = true;
  point.cycles_per_req =
      static_cast<double>(stats.perf_cycles) / static_cast<double>(completed);
  point.instructions_per_req =
      static_cast<double>(stats.perf_instructions) / static_cast<double>(completed);
  point.cache_misses_per_req =
      static_cast<double>(stats.perf_cache_misses) / static_cast<double>(completed);
}

// Runs one (config, rate) cell on the live runtime and returns the measured point.
LivePoint RunCell(const Experiment& exp, const Config& config, double rate) {
  RuntimeOptions options;
  options.num_workers = exp.workers;
  options.mode = config.mode;
  options.num_flows = exp.connections;
  options.enable_stealing = config.stealing;
  options.enable_doorbells = config.doorbells;

  ViewHandler handler = MakeSpinService(exp.service, exp.service_mode, exp.seed + 97);

  LivePoint point;
  point.config = config.name;
  point.transport = exp.transport;
  point.offered_rps = rate;

  std::optional<UringRung> rung = ParseUringRung(exp.transport);
  if (exp.transport == "tcp" || rung) {
    // Transport geometry derives from the runtime options (single source of truth
    // for the flow cap — see TcpOptionsFor).
    std::unique_ptr<SocketTransportBase> transport;
    if (rung) {
      UringTransportOptions uring(TcpOptionsFor(options));
      uring.multishot = rung->multishot;
      uring.sqpoll = rung->sqpoll;
      uring.send_zc = rung->send_zc;
      transport = std::make_unique<UringTransport>(uring);
    } else {
      transport = std::make_unique<TcpTransport>(TcpOptionsFor(options));
    }
    SocketTransportBase* sock = transport.get();
    Runtime runtime(options, std::move(transport), handler);
    if (exp.skew) {
      runtime.mutable_rss().SetIndirection(
          std::vector<int>(static_cast<size_t>(options.num_flow_groups), 0));
    }
    runtime.Start();

    TcpLoadgenOptions gen;
    gen.port = sock->port();
    gen.connections = exp.connections;
    gen.threads = exp.threads;
    gen.arrivals = exp.arrivals;
    gen.rate_rps = rate;
    gen.duration = exp.duration;
    gen.warmup = exp.warmup;
    gen.seed = exp.seed;
    gen.make_payload = [size = exp.payload](Rng&, std::string& out) {
      out.assign(size, 'x');
    };
    TcpLoadgenResult result = RunTcpLoadgen(gen);
    runtime.Shutdown();

    point.achieved_rps = result.achieved_rps();
    point.sent = result.sent;
    point.measured = result.measured;
    point.dropped = result.lost;
    point.send_lag_max_us = ToMicros(result.max_send_lag);
    point.p50_us = ToMicros(result.latency.P50());
    point.p99_us = ToMicros(result.latency.P99());
    point.p999_us = ToMicros(result.latency.P999());
    point.mean_us = result.latency.Mean() / 1e3;
    point.max_us = ToMicros(result.latency.Max());
    WorkerStats stats = runtime.TotalStats();
    point.steals = runtime.TotalShuffleStats().steals;
    point.stolen_events = stats.stolen_events;
    point.doorbells_sent = stats.doorbells_sent;
    point.remote_syscalls = stats.remote_syscalls;
    point.sheds = stats.sheds_deadline + stats.sheds_fairness + stats.sheds_admission;
    // Data-path syscalls amortized over every completed echo of the run (warmup
    // included — it is a steady-state ratio, not a window measurement). epoll pays
    // recv+send per request; batched uring pays io_uring_enter per poll pass.
    uint64_t completed = runtime.Completed();
    point.syscalls_per_req =
        completed > 0 ? static_cast<double>(sock->IoSyscalls()) /
                            static_cast<double>(completed)
                      : 0.0;
    FillPerfRates(point, stats, completed);
    if (!result.clean) {
      std::fprintf(stderr,
                   "fig6_live_runtime: [%s @ %.0f rps] unclean TCP run "
                   "(lost=%llu mismatches=%llu)\n",
                   config.name.c_str(), rate,
                   static_cast<unsigned long long>(result.lost),
                   static_cast<unsigned long long>(result.mismatches));
    }
    return point;
  }

  // Loopback: in-process generator thread drives Runtime::Inject directly.
  MeasuredCompletion completion;
  Runtime runtime(options, handler, completion.Handler());
  if (exp.skew) {
    runtime.mutable_rss().SetIndirection(
        std::vector<int>(static_cast<size_t>(options.num_flow_groups), 0));
  }
  runtime.Start();

  GeneratorOptions gen;
  gen.arrivals = exp.arrivals;
  gen.rate_rps = rate;
  gen.duration = exp.duration;
  gen.num_flows = exp.connections;
  gen.payload_size = exp.payload;
  gen.seed = exp.seed;
  OpenLoopGenerator generator(gen);
  LoopbackSink sink(runtime);

  Nanos start = NowNanos();
  completion.set_measure_start(start + exp.warmup);
  GeneratorResult sent = generator.RunFrom(start, sink);
  // Quiesce before reading the clock: achieved throughput counts the drain tail, so
  // an overloaded point honestly reports its sustainable rate, not the offered one.
  while (runtime.Completed() < runtime.Injected()) {
    std::this_thread::yield();
  }
  Nanos end = NowNanos();
  runtime.Shutdown();

  LatencyHistogram hist = completion.Snapshot();
  Nanos window = end - completion.measure_start();
  point.achieved_rps = window > 0 ? static_cast<double>(completion.measured_count()) *
                                        1e9 / static_cast<double>(window)
                                  : 0.0;
  point.sent = sent.sent;
  point.measured = completion.measured_count();
  point.dropped = sent.dropped;
  point.send_lag_max_us = ToMicros(sent.max_send_lag);
  point.p50_us = ToMicros(hist.P50());
  point.p99_us = ToMicros(hist.P99());
  point.p999_us = ToMicros(hist.P999());
  point.mean_us = hist.Mean() / 1e3;
  point.max_us = ToMicros(hist.Max());
  WorkerStats stats = runtime.TotalStats();
  point.steals = runtime.TotalShuffleStats().steals;
  point.stolen_events = stats.stolen_events;
  point.doorbells_sent = stats.doorbells_sent;
  point.remote_syscalls = stats.remote_syscalls;
  point.sheds = stats.sheds_deadline + stats.sheds_fairness + stats.sheds_admission;
  FillPerfRates(point, stats, runtime.Completed());
  return point;
}

// Runs a cell `repeats` times and keeps the row with the MEDIAN p99. On an
// oversubscribed host, one scheduler stall inside a cell adds tens of ms that the
// CO-safe accounting must (and does) book into that cell's tail; the median
// discards such one-off artifacts without the downward bias min-of-N would have.
// The whole median ROW is returned (not per-field medians) so a point's counters
// — steals, syscalls_per_req, achieved_rps — stay mutually consistent.
LivePoint MeasureCell(const Experiment& exp, const Config& config, double rate,
                      int repeats) {
  std::vector<LivePoint> runs;
  runs.reserve(static_cast<size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    runs.push_back(RunCell(exp, config, rate));
  }
  std::sort(runs.begin(), runs.end(), [](const LivePoint& a, const LivePoint& b) {
    return a.p99_us < b.p99_us;
  });
  return runs[runs.size() / 2];
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  Experiment exp;
  exp.transport = flags.GetString("transport", "loopback");
  exp.workers = static_cast<int>(flags.GetInt("workers", 2));
  exp.connections = static_cast<int>(flags.GetInt("connections", 8));
  exp.threads = static_cast<int>(flags.GetInt("threads", 2));
  const std::string arrivals_name = flags.GetString("arrivals", "poisson");
  const std::string dist_name = flags.GetString("dist", "exponential");
  const double service_us = flags.GetDouble("service-us", 200.0);
  const std::string mode_name = flags.GetString("service-mode", "spin");
  const std::string configs_csv = flags.GetString("configs", "zygos,no-steal,no-ipi");
  const std::string rates_csv = flags.GetString("rates", "");
  const std::string fractions_csv =
      flags.GetString("load-fractions", "0.25,0.5,0.75,0.95");
  const double calibrate_rate = flags.GetDouble("calibrate-rate", 0.0);
  const int cell_repeats = static_cast<int>(flags.GetInt("cell-repeats", 1));
  exp.duration = flags.GetInt("duration-ms", 500) * kMillisecond;
  exp.warmup = flags.GetInt("warmup-ms", 150) * kMillisecond;
  exp.payload = static_cast<size_t>(flags.GetInt("payload", 32));
  exp.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  exp.skew = flags.GetBool("skew", true);
  const std::string json_path = flags.GetString("json", "");
  const bool probe_uring = flags.GetBool("probe-uring", false);
  const bool uring_ladder = flags.GetBool("uring-ladder", false);
  if (!flags.CheckUnknown(kUsage)) {
    return 2;
  }

  if (probe_uring) {
    // Capability probe for harnesses (scripts/ci.sh): no sweep, just the verdict.
    // The first line's "available"/"unavailable" verdict is the stable grep target;
    // the second line carries the per-feature support set so harnesses can gate
    // individual ladder rungs (`grep 'sqpoll=1'`).
    if (UringTransport::Available()) {
      const UringProbe& probe = ProbeUring();
      std::printf("io_uring: available\n");
      std::printf("io_uring: features multishot=%d sqpoll=%d send_zc=%d\n",
                  (probe.buf_ring && probe.multishot) ? 1 : 0, probe.sqpoll ? 1 : 0,
                  probe.send_zc ? 1 : 0);
      return 0;
    }
    std::printf("io_uring: unavailable: %s\n",
                UringTransport::UnavailableReason().c_str());
    return 1;
  }

  if (uring_ladder) {
    // The full matched-load ladder: epoll reference, then each uring rung.
    exp.transport = "tcp,uring,uring+ms,uring+ms+sqp,uring+ms+sqp+zc";
  }
  std::vector<std::string> transports;
  for (const std::string& name : SplitCsv(exp.transport)) {
    std::optional<UringRung> rung = ParseUringRung(name);
    if (name != "loopback" && name != "tcp" && !rung) {
      std::fprintf(stderr, "fig6_live_runtime: unknown --transport=%s\n%s\n",
                   name.c_str(), kUsage);
      return 2;
    }
    if (rung) {
      // Graceful capability fallback: drop the leg, keep the sweep honest about it.
      if (!UringTransport::Available()) {
        std::printf("# skip: transport=%s (io_uring unavailable: %s)\n", name.c_str(),
                    UringTransport::UnavailableReason().c_str());
        continue;
      }
      std::string denied = RungDenied(*rung);
      if (!denied.empty()) {
        std::printf("# skip: transport=%s (kernel denies %s)\n", name.c_str(),
                    denied.c_str());
        continue;
      }
    }
    if (std::find(transports.begin(), transports.end(), name) == transports.end()) {
      transports.push_back(name);
    }
  }
  if (transports.empty()) {
    std::printf("# skip: no usable transport requested — nothing to sweep\n");
    return 0;
  }
  // The echoed transport list reflects what actually runs (post uring-skip).
  std::string transports_joined;
  for (const std::string& name : transports) {
    transports_joined += (transports_joined.empty() ? "" : ",") + name;
  }
  exp.transport = transports.front();
  auto arrivals = ParseArrivalKind(arrivals_name);
  auto service_mode = ParseServiceMode(mode_name);
  if (!arrivals || !service_mode) {
    std::fprintf(stderr, "fig6_live_runtime: bad --arrivals or --service-mode\n%s\n",
                 kUsage);
    return 2;
  }
  exp.arrivals = *arrivals;
  exp.service_mode = *service_mode;
  exp.service = MakeDistribution(dist_name, FromMicros(service_us));
  if (!exp.service) {
    std::fprintf(stderr, "fig6_live_runtime: unknown --dist=%s\n%s\n",
                 dist_name.c_str(), kUsage);
    return 2;
  }
  if (exp.workers < 1 || exp.connections < 1 || exp.threads < 1 ||
      exp.duration <= exp.warmup) {
    std::fprintf(stderr,
                 "fig6_live_runtime: need workers/connections/threads >= 1 and "
                 "--duration-ms > --warmup-ms\n%s\n",
                 kUsage);
    return 2;
  }
  if (cell_repeats < 1) {
    std::fprintf(stderr, "fig6_live_runtime: --cell-repeats must be >= 1\n%s\n",
                 kUsage);
    return 2;
  }

  std::vector<Config> configs;
  for (const std::string& name : SplitCsv(configs_csv)) {
    auto config = ParseConfig(name);
    if (!config) {
      std::fprintf(stderr, "fig6_live_runtime: unknown config '%s' in --configs\n%s\n",
                   name.c_str(), kUsage);
      return 2;
    }
    configs.push_back(*config);
  }
  if (configs.empty()) {
    std::fprintf(stderr, "fig6_live_runtime: --configs is empty\n%s\n", kUsage);
    return 2;
  }

  std::printf("# fig6_live_runtime: transport=%s dist=%s service_us=%.1f mode=%s "
              "arrivals=%s workers=%d connections=%d skew=%d duration_ms=%.0f "
              "warmup_ms=%.0f seed=%llu\n",
              transports_joined.c_str(), dist_name.c_str(), service_us,
              ServiceModeName(exp.service_mode), ArrivalKindName(exp.arrivals),
              exp.workers, exp.connections, exp.skew ? 1 : 0,
              static_cast<double>(exp.duration) / 1e6,
              static_cast<double>(exp.warmup) / 1e6,
              static_cast<unsigned long long>(exp.seed));

  // Load points: explicit list, or fractions of a calibrated peak.
  std::vector<double> rates;
  for (const std::string& token : SplitCsv(rates_csv)) {
    double rate = ParseFlagNumberOrDie("rates", token, kUsage);
    if (rate <= 0) {
      std::fprintf(stderr, "fig6_live_runtime: --rates entries must be > 0\n");
      return 2;
    }
    rates.push_back(rate);
  }
  if (rates.empty()) {
    // Overload probe: offered load far beyond nominal capacity; the achieved
    // completion rate IS the peak sustainable throughput on this host. Calibrated
    // once, on the first requested transport, so every transport then sweeps the
    // same rate list (matched-load comparisons).
    double nominal = static_cast<double>(exp.workers) * 1e9 /
                     exp.service->MeanNanos();
    double probe = calibrate_rate > 0 ? calibrate_rate : 3.0 * nominal;
    std::printf("# calibration: probing peak throughput at %.0f rps (zygos, %s)...\n",
                probe, transports.front().c_str());
    std::fflush(stdout);
    exp.transport = transports.front();
    // Median of `--cell-repeats` probes, by achieved rps (the statistic this step
    // reads): a single probe's peak estimate swings ~15% run to run on a noisy
    // host, and every downstream rate is a fraction of it.
    std::vector<double> peaks;
    for (int i = 0; i < cell_repeats; ++i) {
      peaks.push_back(RunCell(exp, Config{"zygos", RuntimeMode::kZygos, true, true},
                              probe)
                          .achieved_rps);
    }
    std::sort(peaks.begin(), peaks.end());
    double peak = peaks[peaks.size() / 2];
    if (peak <= 0) {
      std::fprintf(stderr, "fig6_live_runtime: calibration produced no throughput\n");
      return 1;
    }
    std::printf("# calibration: peak sustainable throughput = %.0f rps\n", peak);
    for (const std::string& token : SplitCsv(fractions_csv)) {
      double fraction = ParseFlagNumberOrDie("load-fractions", token, kUsage);
      if (fraction <= 0) {
        std::fprintf(stderr,
                     "fig6_live_runtime: --load-fractions entries must be > 0\n");
        return 2;
      }
      rates.push_back(fraction * peak);
    }
  }
  // The peak-load headline, the JSON metric and both acceptance predicates all read
  // the LAST point of a curve as "the highest load" — make that true by construction.
  std::sort(rates.begin(), rates.end());

  LiveRunInfo info;
  info.transport = transports_joined;
  info.distribution = dist_name;
  info.service_us = service_us;
  info.service_mode = ServiceModeName(exp.service_mode);
  info.arrivals = ArrivalKindName(exp.arrivals);
  info.workers = exp.workers;
  info.connections = exp.connections;
  info.skew = exp.skew;
  info.duration_ms = static_cast<double>(exp.duration) / 1e6;
  info.warmup_ms = static_cast<double>(exp.warmup) / 1e6;
  info.seed = exp.seed;
  info.perf_available = PerfCountersAvailable();
  info.perf_reason = info.perf_available ? "" : PerfCountersUnavailableReason();
  if (!info.perf_available) {
    std::printf("# note: perf counters unavailable (%s) — cycles/insns/miss "
                "columns report 0\n",
                info.perf_reason.c_str());
  }

  PrintLiveCsvHeader(stdout);
  std::vector<LivePoint> points;
  for (const std::string& transport : transports) {
    exp.transport = transport;
    for (const Config& config : configs) {
      for (double rate : rates) {
        LivePoint point = MeasureCell(exp, config, rate, cell_repeats);
        PrintLiveCsvRow(stdout, point);
        std::fflush(stdout);
        points.push_back(std::move(point));
      }
    }
  }

  // Headline: the acceptance view of the sweep (stable format; scripts grep it).
  // Peaks read the last matching row: rates ascend, so that is the highest load of
  // the LAST swept transport (all transports run the same rate list).
  double zygos_peak = 0, no_steal_peak = 0;
  double uring_syscalls = 0, epoll_syscalls = 0;
  uint64_t zygos_sheds = 0;
  for (const LivePoint& point : points) {
    if (point.config == "zygos") {
      zygos_peak = point.p99_us;
      zygos_sheds = point.sheds;
      if (point.transport == "uring") {
        uring_syscalls = point.syscalls_per_req;
      } else if (point.transport == "tcp") {
        epoll_syscalls = point.syscalls_per_req;
      }
    }
    if (point.config == "no-steal") {
      no_steal_peak = point.p99_us;
    }
  }
  std::printf("# headline: live p99@peak zygos=%.1fus no-steal=%.1fus sheds=%llu "
              "monotone=%s steal_leq_no_steal=%s\n",
              zygos_peak, no_steal_peak,
              static_cast<unsigned long long>(zygos_sheds),
              ZygosP99MonotoneInLoad(points) ? "yes" : "no",
              StealLeqNoStealAtPeak(points) ? "yes" : "no");
  std::printf("# headline: syscalls/req@peak epoll=%.3f uring=%.3f "
              "uring_p99_leq_epoll=%s uring_syscalls_below_epoll=%s\n",
              epoll_syscalls, uring_syscalls,
              UringP99LeqEpollAtPeak(points) ? "yes" : "no",
              UringSyscallsBelowEpoll(points) ? "yes" : "no");
  // Ladder headline only when at least one feature rung actually swept: the
  // rung-by-rung syscall staircase plus its two JSON acceptance booleans.
  bool any_rung = false;
  std::string ladder_cells;
  for (const char* name : {"uring", "uring+ms", "uring+ms+sqp", "uring+ms+sqp+zc"}) {
    double syscalls = -1;
    for (const LivePoint& point : points) {
      if (point.config == "zygos" && point.transport == name) {
        syscalls = point.syscalls_per_req;  // rates ascend: last row = peak load
      }
    }
    if (syscalls < 0) {
      continue;
    }
    any_rung = any_rung || std::string(name) != "uring";
    char cell[64];
    std::snprintf(cell, sizeof cell, " %s=%.3f", name, syscalls);
    ladder_cells += cell;
  }
  if (any_rung) {
    std::printf("# headline: uring ladder syscalls/req@peak%s "
                "strictly_decreasing=%s full_ladder_leq_0.1=%s\n",
                ladder_cells.c_str(),
                UringLadderSyscallsStrictlyDecreasing(points) ? "yes" : "no",
                UringFullLadderSyscallsLeq0p1(points) ? "yes" : "no");
  }

  if (!json_path.empty() && !WriteLiveJsonReport(json_path, info, points)) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace zygos

int main(int argc, char** argv) { return zygos::Main(argc, argv); }
