// Fan-out tail amplification through a degraded network, on the LIVE runtime: the
// tail-at-scale experiment (Dean & Barroso; Sriraman et al.) run end-to-end through
// the chaos proxy (src/chaos/chaos_proxy.h). A logical request fans into N
// sub-requests on distinct connections and completes at the max of the N — so any
// per-sub jitter the network injects is sampled N times per request, and the logical
// p99 must GROW with N. That amplification law is the acceptance gate, and it is
// exactly why microsecond-scale tails matter at all: a service that fans out to 100
// leaves lives at the p99.99 of its leaves.
//
// Two sweeps:
//   amplification  N in --fanouts, each {direct, through-proxy}; the proxy injects
//                  --proxy-s2c jitter (default ms-scale lognormal) on responses. The
//                  through-proxy p99-vs-N curve must rise (monotone within tolerance,
//                  and the largest N at least 1.2x the smallest).
//   steal-compare  (--steal-compare, on by default) N = max fanout through a
//                  --steal-jitter proxy, ZygOS work stealing on vs off, sleep-mode
//                  service with a skewed RSS table (all flows home to worker 0): the
//                  no-steal runtime serves the whole load from one worker and its
//                  logical p99 must not beat stealing's.
//
// stdout: one CSV row per cell plus `# headline:`; `--json=PATH` writes the
// BENCH-contract report with the booleans scripts/ci.sh and
// scripts/bench_trajectory.sh gate on: p99_amplification_monotone_in_fanout,
// steal_leq_no_steal_under_jitter, all_runs_clean.
//
// Usage: fanout_chaos [--workers=N] [--connections=N] [--threads=N]
//   [--logical-rate=RPS] [--fanouts=1,2,4,8] [--duration-ms=N] [--warmup-ms=N]
//   [--proxy-s2c=MODEL] [--steal-compare=BOOL] [--steal-rate=SUB_RPS]
//   [--steal-jitter=MODEL] [--service-us=F] [--payload=N] [--seed=N] [--json=PATH]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/chaos/chaos_proxy.h"
#include "src/common/distribution.h"
#include "src/common/flags.h"
#include "src/common/time_units.h"
#include "src/loadgen/spin_service.h"
#include "src/loadgen/tcp_loadgen.h"
#include "src/runtime/runtime.h"
#include "src/runtime/tcp_transport.h"

namespace zygos {
namespace {

constexpr const char* kUsage =
    "usage: fanout_chaos [--workers=N] [--connections=N] [--threads=N]\n"
    "  [--logical-rate=RPS] [--fanouts=1,2,4,8] [--duration-ms=N] [--warmup-ms=N]\n"
    "  [--proxy-s2c=MODEL] [--steal-compare=BOOL] [--steal-rate=SUB_RPS]\n"
    "  [--steal-jitter=MODEL] [--service-us=F] [--payload=N] [--seed=N]\n"
    "  [--json=PATH]  (MODEL grammar: see src/chaos/chaos_proxy.h ParseDelayModel)";

struct Experiment {
  int workers = 2;
  int connections = 8;
  int threads = 1;
  double logical_rate = 250;
  Nanos duration = 0;
  Nanos warmup = 0;
  DelayModel proxy_s2c;
  DelayModel steal_jitter;
  double steal_rate = 1200;  // SUB-requests/s for the steal-compare cells
  Nanos service = 300 * kMicrosecond;
  size_t payload = 24;
  uint64_t seed = 1;
};

struct Cell {
  std::string config;  // direct | proxy | steal | no-steal
  int fanout_n = 0;
  double offered_logical_rps = 0;
  double achieved_logical_rps = 0;
  double p50_us = 0;
  double p99_us = 0;   // LOGICAL (max-of-N) p99 — the amplification quantity
  double p999_us = 0;
  double sub_p99_us = 0;
  uint64_t logical_measured = 0;
  uint64_t logical_lost = 0;
  bool clean = false;
};

Cell Measure(const std::string& config, int fanout_n, double logical_rate,
             const TcpLoadgenResult& result) {
  Cell cell;
  cell.config = config;
  cell.fanout_n = fanout_n;
  cell.offered_logical_rps = logical_rate;
  cell.achieved_logical_rps = result.achieved_logical_rps();
  cell.p50_us = ToMicros(result.latency.P50());
  cell.p99_us = ToMicros(result.latency.P99());
  cell.p999_us = ToMicros(result.latency.P999());
  cell.sub_p99_us = ToMicros(result.sub_latency.P99());
  cell.logical_measured = result.logical_measured;
  cell.logical_lost = result.logical_lost;
  cell.clean = result.clean && result.logical_lost == 0;
  return cell;
}

TcpLoadgenOptions GenFor(const Experiment& exp, uint16_t port, int fanout_n,
                         double logical_rate, uint64_t seed) {
  TcpLoadgenOptions gen;
  gen.port = port;
  gen.connections = exp.connections;
  gen.threads = exp.threads;
  gen.fanout_n = fanout_n;
  gen.rate_rps = logical_rate;  // arrivals are LOGICAL requests
  gen.duration = exp.duration;
  gen.warmup = exp.warmup;
  gen.seed = seed;
  gen.make_payload = [size = exp.payload](Rng&, std::string& out) {
    out.assign(size, 'f');
  };
  return gen;
}

// One amplification cell: echo runtime, optionally behind a response-jitter proxy.
// The service is a cheap echo so the injected network jitter dominates the sub
// latency — the cleanest reading of the max-of-N effect.
Cell RunFanoutCell(const Experiment& exp, int fanout_n, bool through_proxy) {
  RuntimeOptions options;
  options.num_workers = exp.workers;
  options.num_flows = exp.connections;
  auto transport = std::make_unique<TcpTransport>(TcpOptionsFor(options));
  TcpTransport* tcp = transport.get();
  ViewHandler echo = [](uint64_t, std::string_view request, ResponseBuilder& out) {
    out.Append(request);
  };
  Runtime runtime(options, std::move(transport), std::move(echo));
  runtime.Start();

  ChaosProxy* proxy = nullptr;
  std::unique_ptr<ChaosProxy> owned_proxy;
  uint16_t port = tcp->port();
  if (through_proxy) {
    ChaosProxyOptions chaos;
    chaos.upstream_port = tcp->port();
    chaos.server_to_client = exp.proxy_s2c;
    chaos.seed = exp.seed + static_cast<uint64_t>(fanout_n) * 13;
    owned_proxy = std::make_unique<ChaosProxy>(chaos);
    proxy = owned_proxy.get();
    if (!proxy->Start()) {
      std::fprintf(stderr, "fanout_chaos: proxy failed to start\n");
      std::exit(1);
    }
    port = proxy->port();
  }

  TcpLoadgenResult result = RunTcpLoadgen(
      GenFor(exp, port, fanout_n, exp.logical_rate, exp.seed + 7));
  if (proxy != nullptr) {
    proxy->Stop();
  }
  runtime.Shutdown();
  return Measure(through_proxy ? "proxy" : "direct", fanout_n, exp.logical_rate,
                 result);
}

// One steal-compare cell: sleep-mode service (host-thread friendly), RSS skewed so
// every flow homes to worker 0, jittery proxy in the path. With stealing off the
// whole load queues behind one worker; stealing spreads it — its logical p99 must
// not lose.
Cell RunStealCell(const Experiment& exp, int fanout_n, bool stealing) {
  RuntimeOptions options;
  options.num_workers = exp.workers;
  options.num_flows = exp.connections;
  options.enable_stealing = stealing;
  auto dist = std::shared_ptr<const ServiceTimeDistribution>(
      MakeDistribution("exponential", exp.service));
  ViewHandler handler = MakeSpinService(dist, ServiceMode::kSleep, exp.seed + 97);
  auto transport = std::make_unique<TcpTransport>(TcpOptionsFor(options));
  TcpTransport* tcp = transport.get();
  Runtime runtime(options, std::move(transport), std::move(handler));
  runtime.mutable_rss().SetIndirection(
      std::vector<int>(static_cast<size_t>(options.num_flow_groups), 0));
  runtime.Start();

  ChaosProxyOptions chaos;
  chaos.upstream_port = tcp->port();
  chaos.server_to_client = exp.steal_jitter;
  chaos.seed = exp.seed + (stealing ? 211 : 223);
  ChaosProxy proxy(chaos);
  if (!proxy.Start()) {
    std::fprintf(stderr, "fanout_chaos: proxy failed to start\n");
    std::exit(1);
  }

  double logical_rate = exp.steal_rate / fanout_n;
  TcpLoadgenResult result = RunTcpLoadgen(
      GenFor(exp, proxy.port(), fanout_n, logical_rate, exp.seed + 31));
  proxy.Stop();
  runtime.Shutdown();
  return Measure(stealing ? "steal" : "no-steal", fanout_n, logical_rate, result);
}

void PrintCell(const Cell& cell) {
  std::printf("%s,%d,%.0f,%.0f,%.1f,%.1f,%.1f,%.1f,%llu,%llu,%d\n",
              cell.config.c_str(), cell.fanout_n, cell.offered_logical_rps,
              cell.achieved_logical_rps, cell.p50_us, cell.p99_us, cell.p999_us,
              cell.sub_p99_us, static_cast<unsigned long long>(cell.logical_measured),
              static_cast<unsigned long long>(cell.logical_lost),
              cell.clean ? 1 : 0);
  std::fflush(stdout);
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  Experiment exp;
  exp.workers = static_cast<int>(flags.GetInt("workers", 2));
  exp.connections = static_cast<int>(flags.GetInt("connections", 8));
  exp.threads = static_cast<int>(flags.GetInt("threads", 1));
  exp.logical_rate = flags.GetDouble("logical-rate", 250);
  const std::string fanouts_csv = flags.GetString("fanouts", "1,2,4,8");
  exp.duration = flags.GetInt("duration-ms", 3000) * kMillisecond;
  exp.warmup = flags.GetInt("warmup-ms", 800) * kMillisecond;
  const std::string proxy_s2c = flags.GetString("proxy-s2c", "lognormal:1000:0.8");
  const bool steal_compare = flags.GetBool("steal-compare", true);
  exp.steal_rate = flags.GetDouble("steal-rate", 1200);
  const std::string steal_jitter = flags.GetString("steal-jitter", "uniform:50:100");
  exp.service = static_cast<Nanos>(flags.GetDouble("service-us", 300) * 1000);
  exp.payload = static_cast<size_t>(flags.GetInt("payload", 24));
  exp.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::string json_path = flags.GetString("json", "");
  if (!flags.CheckUnknown(kUsage)) {
    return 2;
  }
  auto s2c_model = ParseDelayModel(proxy_s2c);
  auto jitter_model = ParseDelayModel(steal_jitter);
  if (!s2c_model || !jitter_model) {
    std::fprintf(stderr, "fanout_chaos: bad delay model '%s'\n%s\n",
                 (!s2c_model ? proxy_s2c : steal_jitter).c_str(), kUsage);
    return 2;
  }
  exp.proxy_s2c = *s2c_model;
  exp.steal_jitter = *jitter_model;

  std::vector<int> fanouts;
  for (const std::string& token : SplitCsv(fanouts_csv)) {
    int n = static_cast<int>(ParseFlagNumberOrDie("fanouts", token, kUsage));
    if (n < 1 || n > exp.connections) {
      std::fprintf(stderr,
                   "fanout_chaos: --fanouts entries must be in [1, --connections]\n");
      return 2;
    }
    fanouts.push_back(n);
  }
  if (fanouts.empty() || exp.duration <= exp.warmup) {
    std::fprintf(stderr,
                 "fanout_chaos: need non-empty --fanouts and --duration-ms > "
                 "--warmup-ms\n%s\n",
                 kUsage);
    return 2;
  }
  std::sort(fanouts.begin(), fanouts.end());
  fanouts.erase(std::unique(fanouts.begin(), fanouts.end()), fanouts.end());

  std::printf("# fanout_chaos: workers=%d connections=%d threads=%d "
              "logical_rate=%.0f duration_ms=%.0f warmup_ms=%.0f proxy_s2c=%s "
              "steal_compare=%d steal_rate=%.0f steal_jitter=%s service_us=%.0f "
              "seed=%llu\n",
              exp.workers, exp.connections, exp.threads, exp.logical_rate,
              static_cast<double>(exp.duration) / 1e6,
              static_cast<double>(exp.warmup) / 1e6,
              DelayModelName(exp.proxy_s2c).c_str(), steal_compare ? 1 : 0,
              exp.steal_rate, DelayModelName(exp.steal_jitter).c_str(),
              static_cast<double>(exp.service) / 1000,
              static_cast<unsigned long long>(exp.seed));
  std::printf("config,fanout_n,offered_logical_rps,achieved_logical_rps,p50_us,"
              "p99_us,p999_us,sub_p99_us,logical_measured,logical_lost,clean\n");

  std::vector<Cell> direct_curve;
  std::vector<Cell> proxy_curve;
  for (int n : fanouts) {
    Cell direct = RunFanoutCell(exp, n, /*through_proxy=*/false);
    PrintCell(direct);
    direct_curve.push_back(direct);
    Cell proxied = RunFanoutCell(exp, n, /*through_proxy=*/true);
    PrintCell(proxied);
    proxy_curve.push_back(proxied);
  }

  Cell steal_cell;
  Cell no_steal_cell;
  if (steal_compare) {
    int steal_fanout = fanouts.back();
    steal_cell = RunStealCell(exp, steal_fanout, /*stealing=*/true);
    PrintCell(steal_cell);
    no_steal_cell = RunStealCell(exp, steal_fanout, /*stealing=*/false);
    PrintCell(no_steal_cell);
  }

  // Acceptance booleans.
  //
  // Monotone-within-tolerance on the through-proxy curve: each step may dip at most
  // 10% (p99 estimation noise on finite samples), and the largest fan-out must
  // amplify the smallest's p99 by >= 1.2x — the max-of-N quantile shift for the
  // default ms-scale lognormal predicts ~1.7x at N=8, so 1.2 is a robust floor, while
  // a fan-out implementation that measured subs instead of maxes would sit at 1.0.
  bool monotone = proxy_curve.size() >= 2;
  for (size_t i = 0; i + 1 < proxy_curve.size(); ++i) {
    monotone = monotone && proxy_curve[i + 1].p99_us >= 0.9 * proxy_curve[i].p99_us;
  }
  monotone = monotone &&
             proxy_curve.back().p99_us >= 1.2 * proxy_curve.front().p99_us;
  // Stealing must not lose under injected jitter (5% tolerance for shared noise).
  bool steal_leq =
      !steal_compare || steal_cell.p99_us <= no_steal_cell.p99_us * 1.05;
  bool all_clean = true;
  auto fold_clean = [&all_clean](const Cell& cell) {
    all_clean = all_clean && cell.clean;
  };
  for (const Cell& cell : direct_curve) {
    fold_clean(cell);
  }
  for (const Cell& cell : proxy_curve) {
    fold_clean(cell);
  }
  if (steal_compare) {
    fold_clean(steal_cell);
    fold_clean(no_steal_cell);
  }

  double amplification = proxy_curve.front().p99_us > 0
                             ? proxy_curve.back().p99_us / proxy_curve.front().p99_us
                             : 0;
  std::printf("# headline: fanout x%d proxy p99 %.1fus vs x%d %.1fus "
              "(amplification %.2fx) monotone=%s steal_leq_no_steal=%s clean=%s\n",
              proxy_curve.back().fanout_n, proxy_curve.back().p99_us,
              proxy_curve.front().fanout_n, proxy_curve.front().p99_us,
              amplification, monotone ? "yes" : "no",
              steal_compare ? (steal_leq ? "yes" : "no") : "skipped",
              all_clean ? "yes" : "no");

  if (!json_path.empty()) {
    FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "fanout_chaos: cannot open %s for writing\n",
                   json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"metric\": \"fanout_p99_amplification\",\n"
                 "  \"value\": %.3f,\n"
                 "  \"unit\": \"x\",\n"
                 "  \"commit\": \"\",\n"
                 "  \"params\": {\n"
                 "    \"workers\": %d, \"connections\": %d, \"threads\": %d, "
                 "\"logical_rate_rps\": %.0f,\n"
                 "    \"duration_ms\": %.0f, \"warmup_ms\": %.0f, "
                 "\"proxy_s2c\": \"%s\", \"steal_jitter\": \"%s\",\n"
                 "    \"steal_rate_rps\": %.0f, \"service_us\": %.1f, "
                 "\"payload\": %zu, \"seed\": %llu,\n"
                 "    \"steal_compare\": %s,\n"
                 "    \"p99_amplification_monotone_in_fanout\": %s,\n"
                 "    \"steal_leq_no_steal_under_jitter\": %s,\n"
                 "    \"all_runs_clean\": %s,\n"
                 "    \"steal_p99_us\": %.2f,\n"
                 "    \"no_steal_p99_us\": %.2f,\n",
                 amplification, exp.workers, exp.connections, exp.threads,
                 exp.logical_rate, static_cast<double>(exp.duration) / 1e6,
                 static_cast<double>(exp.warmup) / 1e6,
                 DelayModelName(exp.proxy_s2c).c_str(),
                 DelayModelName(exp.steal_jitter).c_str(), exp.steal_rate,
                 static_cast<double>(exp.service) / 1000, exp.payload,
                 static_cast<unsigned long long>(exp.seed),
                 steal_compare ? "true" : "false", monotone ? "true" : "false",
                 steal_leq ? "true" : "false", all_clean ? "true" : "false",
                 steal_cell.p99_us, no_steal_cell.p99_us);
    auto print_array = [out](const char* key, const std::vector<Cell>& cells,
                             auto getter, const char* fmt, bool last = false) {
      std::fprintf(out, "    \"%s\": [", key);
      for (size_t i = 0; i < cells.size(); ++i) {
        if (i > 0) {
          std::fprintf(out, ", ");
        }
        std::fprintf(out, fmt, getter(cells[i]));
      }
      std::fprintf(out, "]%s\n", last ? "" : ",");
    };
    print_array("fanout_n", proxy_curve,
                [](const Cell& c) { return c.fanout_n; }, "%d");
    print_array("direct_p99_us", direct_curve,
                [](const Cell& c) { return c.p99_us; }, "%.2f");
    print_array("proxy_p99_us", proxy_curve,
                [](const Cell& c) { return c.p99_us; }, "%.2f");
    print_array("proxy_sub_p99_us", proxy_curve,
                [](const Cell& c) { return c.sub_p99_us; }, "%.2f",
                /*last=*/true);
    std::fprintf(out, "  }\n}\n");
    if (std::fclose(out) != 0) {
      std::fprintf(stderr, "fanout_chaos: write to %s failed\n", json_path.c_str());
      return 1;
    }
  }
  return monotone && steal_leq && all_clean ? 0 : 1;
}

}  // namespace
}  // namespace zygos

int main(int argc, char** argv) { return zygos::Main(argc, argv); }
