// Overload control on the LIVE runtime: goodput, shed rate and p99-of-admitted as
// offered load sweeps past saturation — the regime the fig6 sweeps deliberately
// avoid and production systems live in. SWP ("Microsecond Network SLOs Without
// Priorities", PAPERS.md) frames admission as an SLO problem: the server should
// serve its capacity *inside* the SLO and refuse the rest early, instead of letting
// unbounded queueing make every completion late (the no-shed baseline here, and the
// collapse "Deconstructing the Tail at Scale Effect" attributes to queueing delay).
//
// Protocol (all loads are multiples of a CALIBRATED peak, not the analytic nominal,
// so host speed never skews the sweep):
//   1. calibrate  — overload-enabled run at 3x the analytic nominal rate
//                   (workers / service): achieved_rps is the host's true service
//                   capacity, `peak`.
//   2. baseline   — no-shed run at 0.8x peak: its p99/max seed the deadline budget,
//                   budget = max(3 x p99_base, 2 x max_base, 4 x analytic M/M/c p99
//                   wait, 10 ms) — the analytic floor ties the budget to the
//                   queueing layer's operating point (src/queueing/analytic.h), the
//                   measured terms make "zero sheds below saturation" robust on a
//                   noisy host. SLO = 4 x budget (2x for the server-side queueing
//                   budget, 2x again for client-observed residency the server
//                   cannot measure: kernel socket buffers, TX, generator lag).
//   3. sweep      — {0.8, 1, 2, 4, 10} x peak, configs `zygos` (deadline shedding +
//                   adaptive admission) and `no-shed` (overload control off).
//                   Goodput = completions inside the SLO per second of measured
//                   window; sheds are counted separately on both sides of the wire
//                   and the loadgen ledger must balance (completed + shed + lost
//                   == sent) in every cell.
//
// stdout: one CSV row per cell (config FIRST column, bench/README.md contract) plus
// a `# headline:` line; --json=PATH writes the BENCH-contract report with the
// acceptance booleans scripts/bench_trajectory.sh and scripts/ci.sh gate on:
//   goodput_at_2x_geq_090_peak, admitted_p99_bounded_under_overload,
//   no_shed_collapses, zero_sheds_below_saturation, shed_fraction_tracks_analytic,
//   ledger_balanced
// and the measured shed curve next to the analytic prediction max(0, 1 - 1/m).
// Exit status is 0 iff every boolean holds.
//
// Usage: overload_live_runtime [--workers=N] [--connections=N] [--threads=N]
//   [--service-us=N] [--multipliers=m1,m2,...] [--duration-ms=N] [--warmup-ms=N]
//   [--budget-ms=N] [--slo-ms=N] [--payload=N] [--seed=N] [--json=PATH]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/flags.h"
#include "src/common/time_units.h"
#include "src/loadgen/arrival.h"
#include "src/loadgen/tcp_loadgen.h"
#include "src/overload/admission.h"
#include "src/queueing/analytic.h"
#include "src/runtime/runtime.h"
#include "src/runtime/tcp_transport.h"

namespace zygos {
namespace {

constexpr const char* kUsage =
    "usage: overload_live_runtime [--workers=N] [--connections=N] [--threads=N]\n"
    "  [--service-us=N] [--multipliers=m1,m2,...] [--duration-ms=N] [--warmup-ms=N]\n"
    "  [--budget-ms=N] [--slo-ms=N] [--payload=N] [--seed=N] [--json=PATH]";

struct Experiment {
  int workers = 2;
  int connections = 8;
  int threads = 2;
  Nanos service = kMillisecond;
  Nanos duration = 0;
  Nanos warmup = 0;
  size_t payload = 32;
  uint64_t seed = 1;
};

// One sweep cell, finished once the SLO is known.
struct Cell {
  std::string config;  // "zygos" | "no-shed"
  double multiplier = 0;
  double offered_rps = 0;
  double achieved_rps = 0;   // admitted completions / measured window
  double goodput_rps = 0;    // completions inside the SLO / measured window
  double p99_admitted_us = 0;
  double shed_fraction = 0;  // shed / sent, whole run
  double predicted_shed = 0; // analytic max(0, 1 - 1/m)
  uint64_t sent = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t lost = 0;
  uint64_t sheds_deadline = 0;
  uint64_t sheds_fairness = 0;
  uint64_t sheds_admission = 0;
  bool clean = false;
  bool ledger_ok = false;
};

struct RawCell {
  TcpLoadgenResult result;
  WorkerStats stats;
};

// Echo with a fixed sleep service time: capacity = workers / service independent of
// host CPU speed (sleeps overlap even on one hardware thread), so the overload
// multipliers mean the same thing on every machine.
ViewHandler SleepEcho(Nanos service) {
  return [service](uint64_t, std::string_view request, ResponseBuilder& out) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(service));
    out.Append(request);
  };
}

RawCell RunRaw(const Experiment& exp, bool overload_on, double rate, Nanos budget,
               Nanos slo, uint64_t seed_salt) {
  RuntimeOptions options;
  options.num_workers = exp.workers;
  options.num_flows = std::max(64, exp.connections);
  options.overload.enabled = overload_on;
  options.overload.slo = slo;
  options.overload.deadline_budget = budget;
  options.overload.adaptive = overload_on;  // target derives to budget/2
  auto transport = std::make_unique<TcpTransport>(TcpOptionsFor(options));
  TcpTransport* tcp = transport.get();
  Runtime runtime(options, std::move(transport), SleepEcho(exp.service));
  runtime.Start();

  TcpLoadgenOptions gen;
  gen.port = tcp->port();
  gen.connections = exp.connections;
  gen.threads = exp.threads;
  gen.rate_rps = rate;
  gen.duration = exp.duration;
  gen.warmup = exp.warmup;
  gen.seed = exp.seed + seed_salt;
  // Bounded drain: a collapsed no-shed cell holds seconds of backlog the harness
  // must not wait out — undrained requests count as `lost`, the ledger still
  // balances, and teardown refusals reclaim the server side.
  gen.drain_timeout = 3 * kSecond;
  gen.make_payload = [size = exp.payload](Rng&, std::string& out) {
    out.assign(size, 'x');
  };
  RawCell raw;
  raw.result = RunTcpLoadgen(gen);
  runtime.Shutdown();
  raw.stats = runtime.TotalStats();
  return raw;
}

Cell FinishCell(const std::string& config, double multiplier, double rate,
                const RawCell& raw, Nanos slo) {
  const TcpLoadgenResult& r = raw.result;
  Cell cell;
  cell.config = config;
  cell.multiplier = multiplier;
  cell.offered_rps = rate;
  cell.achieved_rps = r.achieved_rps();
  Nanos window = r.measure_end - r.measure_start;
  if (window > 0 && r.latency.Count() > 0) {
    double within =
        static_cast<double>(r.latency.Count()) * (1.0 - r.latency.Ccdf(slo));
    cell.goodput_rps = within * 1e9 / static_cast<double>(window);
  }
  cell.p99_admitted_us = ToMicros(r.latency.P99());
  cell.sent = r.sent;
  cell.completed = r.completed;
  cell.shed = r.shed;
  cell.lost = r.lost;
  cell.shed_fraction =
      r.sent > 0 ? static_cast<double>(r.shed) / static_cast<double>(r.sent) : 0.0;
  cell.predicted_shed = PredictedShedFraction(multiplier);
  cell.sheds_deadline = raw.stats.sheds_deadline;
  cell.sheds_fairness = raw.stats.sheds_fairness;
  cell.sheds_admission = raw.stats.sheds_admission;
  cell.clean = r.clean;
  cell.ledger_ok = r.completed + r.shed + r.lost == r.sent;
  return cell;
}

void PrintCell(const Cell& cell) {
  std::printf("%s,%.2f,%.0f,%.0f,%.0f,%.1f,%llu,%llu,%llu,%llu,%.4f,%.4f,"
              "%llu,%llu,%llu,%d,%d\n",
              cell.config.c_str(), cell.multiplier, cell.offered_rps,
              cell.achieved_rps, cell.goodput_rps, cell.p99_admitted_us,
              static_cast<unsigned long long>(cell.sent),
              static_cast<unsigned long long>(cell.completed),
              static_cast<unsigned long long>(cell.shed),
              static_cast<unsigned long long>(cell.lost), cell.shed_fraction,
              cell.predicted_shed,
              static_cast<unsigned long long>(cell.sheds_deadline),
              static_cast<unsigned long long>(cell.sheds_fairness),
              static_cast<unsigned long long>(cell.sheds_admission),
              cell.clean ? 1 : 0, cell.ledger_ok ? 1 : 0);
  std::fflush(stdout);
}

void PrintJsonArray(FILE* out, const char* key,
                    const std::vector<double>& values, const char* fmt,
                    bool last = false) {
  std::fprintf(out, "    \"%s\": [", key);
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      std::fprintf(out, ", ");
    }
    std::fprintf(out, fmt, values[i]);
  }
  std::fprintf(out, "]%s\n", last ? "" : ",");
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  Experiment exp;
  exp.workers = static_cast<int>(flags.GetInt("workers", 2));
  exp.connections = static_cast<int>(flags.GetInt("connections", 8));
  exp.threads = static_cast<int>(flags.GetInt("threads", 2));
  exp.service = flags.GetInt("service-us", 1000) * kMicrosecond;
  const std::string multipliers_csv = flags.GetString("multipliers", "0.8,1,2,4,10");
  exp.duration = flags.GetInt("duration-ms", 1200) * kMillisecond;
  exp.warmup = flags.GetInt("warmup-ms", 300) * kMillisecond;
  Nanos budget_flag = flags.GetInt("budget-ms", 0) * kMillisecond;
  Nanos slo_flag = flags.GetInt("slo-ms", 0) * kMillisecond;
  exp.payload = static_cast<size_t>(flags.GetInt("payload", 32));
  exp.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::string json_path = flags.GetString("json", "");
  if (!flags.CheckUnknown(kUsage)) {
    return 2;
  }
  if (exp.workers < 1 || exp.connections < 1 || exp.threads < 1 ||
      exp.service <= 0 || exp.duration <= exp.warmup) {
    std::fprintf(stderr,
                 "overload_live_runtime: need workers/connections/threads >= 1, "
                 "--service-us > 0 and --duration-ms > --warmup-ms\n%s\n",
                 kUsage);
    return 2;
  }
  std::vector<double> multipliers;
  for (const std::string& token : SplitCsv(multipliers_csv)) {
    double m = ParseFlagNumberOrDie("multipliers", token, kUsage);
    if (m <= 0) {
      std::fprintf(stderr, "overload_live_runtime: multipliers must be > 0\n");
      return 2;
    }
    multipliers.push_back(m);
  }
  if (multipliers.empty()) {
    std::fprintf(stderr, "overload_live_runtime: --multipliers is empty\n%s\n",
                 kUsage);
    return 2;
  }
  std::sort(multipliers.begin(), multipliers.end());

  double nominal_rps =
      static_cast<double>(exp.workers) * 1e9 / static_cast<double>(exp.service);

  // 1. Calibrate the host's true peak with overload control ON (a generous
  // provisional budget): shedding keeps the run sane at 3x nominal, achieved_rps is
  // the service capacity after sleep overshoot and runtime overhead. An
  // underestimate only makes the sweep gentler relative to true capacity — every
  // boolean is calibration-relative, so the protocol stays sound.
  Nanos provisional_budget = std::max<Nanos>(20 * exp.service, 50 * kMillisecond);
  std::printf("# calibrating peak at 3x nominal (%.0f rps)...\n", 3 * nominal_rps);
  std::fflush(stdout);
  RawCell calib = RunRaw(exp, /*overload_on=*/true, 3 * nominal_rps,
                         provisional_budget, 4 * provisional_budget,
                         /*seed_salt=*/7001);
  double peak_rps = calib.result.achieved_rps();
  if (peak_rps <= 0) {
    std::fprintf(stderr, "overload_live_runtime: calibration served nothing\n");
    return 1;
  }

  // 2. Baseline at 0.8x peak with overload OFF: seeds the deadline budget and
  // doubles as the no-shed 0.8x sweep cell.
  std::printf("# baseline no-shed at 0.8x peak (%.0f rps)...\n", 0.8 * peak_rps);
  std::fflush(stdout);
  RawCell baseline = RunRaw(exp, /*overload_on=*/false, 0.8 * peak_rps, 0, 0,
                            /*seed_salt=*/7002);
  Nanos p99_base = baseline.result.latency.P99();
  Nanos max_base = baseline.result.latency.Max();
  // Analytic floor: M/M/c p99 waiting time at the baseline operating point (rates
  // in events/ns, src/queueing/analytic.h) — the slo_search-style seed the adaptive
  // controller's target ultimately derives from (target = budget/2 via the
  // resolver).
  double mu = 1.0 / static_cast<double>(exp.service);
  double lambda_base = 0.8 * peak_rps / 1e9;
  double analytic_wait =
      lambda_base < exp.workers * mu
          ? MmcWaitQuantile(exp.workers, lambda_base, mu, 0.99)
          : 0.0;
  Nanos budget = budget_flag > 0
                     ? budget_flag
                     : std::max({3 * p99_base, 2 * max_base,
                                 static_cast<Nanos>(4.0 * analytic_wait),
                                 10 * kMillisecond});
  Nanos slo = slo_flag > 0 ? slo_flag : 4 * budget;

  std::printf("# overload_live_runtime: workers=%d connections=%d threads=%d "
              "service_us=%.0f peak_rps=%.0f budget_ms=%.1f slo_ms=%.1f "
              "analytic_wait_p99_us=%.1f duration_ms=%.0f warmup_ms=%.0f seed=%llu\n",
              exp.workers, exp.connections, exp.threads, ToMicros(exp.service),
              peak_rps, static_cast<double>(budget) / 1e6,
              static_cast<double>(slo) / 1e6, analytic_wait / 1e3,
              static_cast<double>(exp.duration) / 1e6,
              static_cast<double>(exp.warmup) / 1e6,
              static_cast<unsigned long long>(exp.seed));
  std::printf("config,multiplier,offered_rps,achieved_rps,goodput_rps,"
              "p99_admitted_us,sent,completed,shed,lost,shed_fraction,"
              "predicted_shed,sheds_deadline,sheds_fairness,sheds_admission,"
              "clean,ledger_ok\n");

  // 3. The sweep: both configs over every multiplier, ascending, zygos first per
  // load. The baseline run above is reused as the no-shed cell nearest 0.8x.
  std::vector<Cell> cells;
  for (size_t i = 0; i < multipliers.size(); ++i) {
    double m = multipliers[i];
    double rate = m * peak_rps;
    RawCell zygos_raw = RunRaw(exp, /*overload_on=*/true, rate, budget, slo,
                               /*seed_salt=*/100 + i);
    cells.push_back(FinishCell("zygos", m, rate, zygos_raw, slo));
    PrintCell(cells.back());
    if (std::abs(m - 0.8) < 1e-9) {
      cells.push_back(FinishCell("no-shed", m, rate, baseline, slo));
    } else {
      RawCell no_shed_raw = RunRaw(exp, /*overload_on=*/false, rate, 0, 0,
                                   /*seed_salt=*/200 + i);
      cells.push_back(FinishCell("no-shed", m, rate, no_shed_raw, slo));
    }
    PrintCell(cells.back());
  }

  auto find_cell = [&cells](const std::string& config,
                            double m) -> const Cell* {
    for (const Cell& cell : cells) {
      if (cell.config == config && std::abs(cell.multiplier - m) < 1e-9) {
        return &cell;
      }
    }
    return nullptr;
  };

  // The no-overload peak goodput: best no-shed cell at or below saturation.
  double peak_goodput = 0;
  for (const Cell& cell : cells) {
    if (cell.config == "no-shed" && cell.multiplier <= 1.0 + 1e-9) {
      peak_goodput = std::max(peak_goodput, cell.goodput_rps);
    }
  }

  const Cell* zygos_2x = find_cell("zygos", 2.0);
  const Cell* no_shed_2x = find_cell("no-shed", 2.0);
  bool goodput_at_2x = true;
  bool no_shed_collapses = true;
  double goodput_ratio_2x = 0;
  if (zygos_2x != nullptr && peak_goodput > 0) {
    goodput_ratio_2x = zygos_2x->goodput_rps / peak_goodput;
    goodput_at_2x = goodput_ratio_2x >= 0.9;
  }
  if (no_shed_2x != nullptr && peak_goodput > 0) {
    no_shed_collapses = no_shed_2x->goodput_rps < 0.5 * peak_goodput;
  }
  // p99-of-admitted stays inside the SLO at the acceptance cell (2x). Deeper
  // overload cells are reported in the arrays: past ~4x the client-observed tail
  // includes kernel-socket residency the server's budget cannot see.
  bool admitted_p99_bounded =
      zygos_2x == nullptr ||
      zygos_2x->p99_admitted_us <= static_cast<double>(slo) / 1e3;
  bool zero_sheds_below_saturation = true;
  bool shed_tracks_analytic = true;
  bool ledger_balanced = true;
  for (const Cell& cell : cells) {
    ledger_balanced = ledger_balanced && cell.ledger_ok;
    if (cell.config != "zygos") {
      continue;
    }
    if (cell.multiplier < 1.0 - 1e-9) {
      zero_sheds_below_saturation = zero_sheds_below_saturation && cell.shed == 0 &&
                                    cell.sheds_deadline == 0 &&
                                    cell.sheds_fairness == 0 &&
                                    cell.sheds_admission == 0;
    }
    if (cell.multiplier >= 2.0 - 1e-9) {
      shed_tracks_analytic =
          shed_tracks_analytic &&
          std::abs(cell.shed_fraction - cell.predicted_shed) <= 0.2;
    }
  }

  bool all_ok = goodput_at_2x && admitted_p99_bounded && no_shed_collapses &&
                zero_sheds_below_saturation && shed_tracks_analytic &&
                ledger_balanced;
  std::printf("# headline: overload goodput@2x=%.0f/s peak=%.0f/s ratio=%.2f "
              "goodput_at_2x_geq_090_peak=%s admitted_p99_bounded=%s "
              "no_shed_collapses=%s zero_sheds_below_saturation=%s "
              "shed_fraction_tracks_analytic=%s ledger_balanced=%s\n",
              zygos_2x != nullptr ? zygos_2x->goodput_rps : 0.0, peak_goodput,
              goodput_ratio_2x, goodput_at_2x ? "yes" : "no",
              admitted_p99_bounded ? "yes" : "no", no_shed_collapses ? "yes" : "no",
              zero_sheds_below_saturation ? "yes" : "no",
              shed_tracks_analytic ? "yes" : "no", ledger_balanced ? "yes" : "no");

  if (!json_path.empty()) {
    FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "overload_live_runtime: cannot open %s for writing\n",
                   json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"metric\": \"overload_goodput_ratio_at_2x\",\n"
                 "  \"value\": %.3f,\n"
                 "  \"unit\": \"ratio\",\n"
                 "  \"commit\": \"\",\n"
                 "  \"params\": {\n"
                 "    \"workers\": %d, \"connections\": %d, \"threads\": %d, "
                 "\"service_us\": %.0f, \"payload\": %zu, \"seed\": %llu,\n"
                 "    \"duration_ms\": %.0f, \"warmup_ms\": %.0f, "
                 "\"peak_rps\": %.0f, \"peak_goodput_rps\": %.0f,\n"
                 "    \"budget_ms\": %.2f, \"slo_ms\": %.2f, "
                 "\"analytic_wait_p99_us\": %.1f,\n",
                 goodput_ratio_2x, exp.workers, exp.connections, exp.threads,
                 ToMicros(exp.service), exp.payload,
                 static_cast<unsigned long long>(exp.seed),
                 static_cast<double>(exp.duration) / 1e6,
                 static_cast<double>(exp.warmup) / 1e6, peak_rps, peak_goodput,
                 static_cast<double>(budget) / 1e6, static_cast<double>(slo) / 1e6,
                 analytic_wait / 1e3);
    std::fprintf(out,
                 "    \"goodput_at_2x_geq_090_peak\": %s,\n"
                 "    \"admitted_p99_bounded_under_overload\": %s,\n"
                 "    \"no_shed_collapses\": %s,\n"
                 "    \"zero_sheds_below_saturation\": %s,\n"
                 "    \"shed_fraction_tracks_analytic\": %s,\n"
                 "    \"ledger_balanced\": %s,\n",
                 goodput_at_2x ? "true" : "false",
                 admitted_p99_bounded ? "true" : "false",
                 no_shed_collapses ? "true" : "false",
                 zero_sheds_below_saturation ? "true" : "false",
                 shed_tracks_analytic ? "true" : "false",
                 ledger_balanced ? "true" : "false");
    auto column = [&cells](const std::string& config, auto getter) {
      std::vector<double> out_values;
      for (const Cell& cell : cells) {
        if (cell.config == config) {
          out_values.push_back(getter(cell));
        }
      }
      return out_values;
    };
    auto mult = [](const Cell& c) { return c.multiplier; };
    PrintJsonArray(out, "multipliers", column("zygos", mult), "%.2f");
    PrintJsonArray(out, "zygos_goodput_rps",
                   column("zygos", [](const Cell& c) { return c.goodput_rps; }),
                   "%.0f");
    PrintJsonArray(out, "no_shed_goodput_rps",
                   column("no-shed", [](const Cell& c) { return c.goodput_rps; }),
                   "%.0f");
    PrintJsonArray(out, "zygos_p99_admitted_us",
                   column("zygos", [](const Cell& c) { return c.p99_admitted_us; }),
                   "%.1f");
    PrintJsonArray(out, "no_shed_p99_us",
                   column("no-shed", [](const Cell& c) { return c.p99_admitted_us; }),
                   "%.1f");
    PrintJsonArray(out, "zygos_shed_fraction",
                   column("zygos", [](const Cell& c) { return c.shed_fraction; }),
                   "%.4f");
    PrintJsonArray(out, "predicted_shed_fraction",
                   column("zygos", [](const Cell& c) { return c.predicted_shed; }),
                   "%.4f", /*last=*/true);
    std::fprintf(out, "  }\n}\n");
    if (std::fclose(out) != 0) {
      std::fprintf(stderr, "overload_live_runtime: write to %s failed\n",
                   json_path.c_str());
      return 1;
    }
  }
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace zygos

int main(int argc, char** argv) { return zygos::Main(argc, argv); }
