// Figure 7 reproduction: maximum load meeting the SLO (p99 <= 10·S̄) vs mean service
// time over the [0, 50] µs range, now including ZygOS alongside the Fig. 3 baselines
// and the two theoretical bounds.
//
// Expected shape (paper §6.1): ZygOS clearly outperforms IX and Linux for all task
// sizes >= 5 µs and all three distributions; it reaches 90% of the centralized bound by
// ~30 µs (deterministic) / ~40 µs (exponential, bimodal-1).
//
// Usage: fig7_load_slo [--requests=N] [--iterations=K]
#include <cstdio>
#include <vector>

#include "src/common/distribution.h"
#include "src/common/flags.h"
#include "src/queueing/models.h"
#include "src/queueing/slo_search.h"
#include "src/sysmodel/experiment.h"

namespace zygos {
namespace {

double IdealMaxLoad(Topology t, const ServiceTimeDistribution& service, uint64_t requests,
                    int iterations, Nanos slo) {
  auto p99 = [&](double load) {
    QueueingRunParams q;
    q.load = load;
    q.num_requests = requests;
    q.warmup = requests / 10;
    q.seed = 41;
    return RunQueueingModel({Discipline::kFcfs, t}, q, service).sojourn.P99();
  };
  return FindMaxLoadAtSlo(p99, slo, {.max_load = 0.995, .iterations = iterations});
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto requests = static_cast<uint64_t>(flags.GetInt("requests", 100000));
  const int iterations = static_cast<int>(flags.GetInt("iterations", 7));

  const std::vector<Nanos> service_times = {2 * kMicrosecond,  5 * kMicrosecond,
                                            10 * kMicrosecond, 20 * kMicrosecond,
                                            30 * kMicrosecond, 40 * kMicrosecond,
                                            50 * kMicrosecond};
  const std::vector<SystemKind> systems = {
      SystemKind::kZygos, SystemKind::kLinuxFloating, SystemKind::kIx,
      SystemKind::kLinuxPartitioned};

  std::printf("# Figure 7: max load @ SLO(p99 <= 10x mean) vs service time, with ZygOS\n");
  for (const auto& name : {std::string("deterministic"), std::string("exponential"),
                           std::string("bimodal1")}) {
    std::printf("\n## distribution=%s\n", name.c_str());
    std::printf("service_us,M/G/16/FCFS,16xM/G/1/FCFS");
    for (auto kind : systems) {
      std::printf(",%s", SystemKindName(kind).c_str());
    }
    std::printf("\n");
    for (Nanos mean : service_times) {
      auto service = MakeDistribution(name, mean);
      Nanos slo = 10 * mean;
      std::printf("%.0f", ToMicros(mean));
      std::printf(",%.3f", IdealMaxLoad(Topology::kCentralized, *service, requests,
                                        iterations, slo));
      std::printf(",%.3f", IdealMaxLoad(Topology::kPartitioned, *service, requests,
                                        iterations, slo));
      for (auto kind : systems) {
        SystemRunParams params;
        params.num_requests = requests;
        params.warmup = requests / 10;
        params.seed = 43;
        std::printf(",%.3f",
                    MaxLoadAtSlo(kind, params, *service, slo, {.iterations = iterations}));
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  std::printf("\n# Expected: ZygOS dominates all systems for tasks >= 5us and approaches "
              "the centralized bound;\n# IX remains capped by the partitioned bound.\n");
  return 0;
}

}  // namespace
}  // namespace zygos

int main(int argc, char** argv) { return zygos::Main(argc, argv); }
