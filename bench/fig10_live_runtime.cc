// Fig. 10 on the LIVE runtime: Silo/TPC-C served by the real-thread ZygOS data plane
// (src/services/tpcc_service.h) under the open-loop, coordinated-omission-safe
// generator (src/loadgen) — the measured counterpart of the model-driven
// fig10a/fig10b latency benches.
//
// Each request is one transaction from the standard TPC-C mix (45/43/4/4/4), fully
// sampled client-side (src/loadgen/tpcc_gen.h) so the request stream is a pure
// function of --seed. Transaction service times are long and heavy-tailed — the
// regime where work stealing matters most — so the sweep compares:
//   zygos        full design (stealing + doorbells)
//   no-steal     RuntimeOptions::enable_stealing = false
//   partitioned  RuntimeMode::kPartitioned (the shared-nothing IX baseline)
// over ascending load and prints one CSV row per (config, load) cell. `--json=PATH`
// writes the BENCH-contract report with three acceptance booleans:
//   zygos_p99_monotone_in_load  p99 CCDF shape: never drops below 0.8x its running
//                               max as load rises (shared predicate, report.h)
//   steal_leq_no_steal_at_peak  stealing never hurts the tail at the peak cell
//   ledger_balanced             every cell's transaction ledger is exact:
//                               commits + user aborts + malformed + shed (+ lost on
//                               TCP) == requests sent, and malformed == 0 (our own
//                               generator must never emit garbage)
//
// Every cell runs against a FRESH database (LoadTpcc per cell): cells are
// independent, and consistency checks (tests/tpcc_test.cc) stay meaningful.
//
// Usage: fig10_live_runtime [--transport=loopback|tcp] [--workers=N]
//   [--connections=N] [--threads=N] [--arrivals=poisson|fixed] [--warehouses=N]
//   [--scale=tiny|full] [--configs=a,b,...] [--rates=r1,r2,...]
//   [--load-fractions=f1,f2,...] [--calibrate-rate=R] [--cell-repeats=N]
//   [--duration-ms=N] [--warmup-ms=N] [--seed=N] [--skew=BOOL] [--json=PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/flags.h"
#include "src/common/time_units.h"
#include "src/db/tpcc_loader.h"
#include "src/loadgen/arrival.h"
#include "src/loadgen/loadgen.h"
#include "src/loadgen/report.h"
#include "src/loadgen/tcp_loadgen.h"
#include "src/loadgen/tpcc_gen.h"
#include "src/runtime/runtime.h"
#include "src/runtime/socket_transport.h"
#include "src/runtime/tcp_transport.h"
#include "src/services/tpcc_service.h"

namespace zygos {
namespace {

constexpr const char* kUsage =
    "usage: fig10_live_runtime [--transport=loopback|tcp] [--workers=N]\n"
    "  [--connections=N] [--threads=N] [--arrivals=poisson|fixed] [--warehouses=N]\n"
    "  [--scale=tiny|full] [--service-pad-us=F] "
    "[--configs=zygos,no-steal,partitioned]\n"
    "  [--rates=r1,r2,...] [--load-fractions=f1,f2,...] [--calibrate-rate=R]\n"
    "  [--cell-repeats=N] [--duration-ms=N] [--warmup-ms=N] [--seed=N]\n"
    "  [--skew=BOOL] [--json=PATH]";

struct Config {
  std::string name;
  RuntimeMode mode = RuntimeMode::kZygos;
  bool stealing = true;
  bool doorbells = true;
};

std::optional<Config> ParseConfig(const std::string& name) {
  if (name == "zygos") {
    return Config{name, RuntimeMode::kZygos, true, true};
  }
  if (name == "no-steal") {
    return Config{name, RuntimeMode::kZygos, false, true};
  }
  if (name == "partitioned") {
    return Config{name, RuntimeMode::kPartitioned, false, false};
  }
  return std::nullopt;
}

struct Experiment {
  std::string transport = "loopback";  // "loopback" | "tcp"
  int workers = 2;
  int connections = 8;
  int threads = 2;
  ArrivalKind arrivals = ArrivalKind::kPoisson;
  LoaderOptions scale;
  // Blocking pad before each transaction (0 = pure OCC execution). The same
  // rationale as spin_service's sleep mode: on CI hosts with fewer hardware threads
  // than workers, CPU-burn service times make every scheduling policy look alike
  // (all workers timeshare one core); a blocking pad restores real per-worker
  // concurrency so stealing-vs-no-steal stays distinguishable. It also models the
  // paper's longer Silo service times relative to this reduced-scale database.
  Nanos pad = 0;
  Nanos duration = 0;
  Nanos warmup = 0;
  uint64_t seed = 1;
  bool skew = true;
};

// The served handler: optional blocking pad, then one TPC-C transaction.
ViewHandler PaddedHandler(TpccService& service, Nanos pad) {
  return [&service, pad](uint64_t flow_id, std::string_view request,
                         ResponseBuilder& response) {
    (void)flow_id;
    if (pad > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(pad));
    }
    service.HandleView(request, response);
  };
}

// One cell's transaction accounting. Balanced means every scheduled request is
// accounted for end to end — the "commit+abort+shed+lost == sent" gate.
struct CellLedger {
  uint64_t sent = 0;
  uint64_t commits = 0;
  uint64_t user_aborts = 0;
  uint64_t malformed = 0;
  uint64_t shed = 0;
  uint64_t lost = 0;  // TCP: requests on severed connections; loopback: ring refusals
  uint64_t occ_retries = 0;
  bool balanced = false;

  void Accumulate(const CellLedger& other) {
    sent += other.sent;
    commits += other.commits;
    user_aborts += other.user_aborts;
    malformed += other.malformed;
    shed += other.shed;
    lost += other.lost;
    occ_retries += other.occ_retries;
  }
};

struct CellResult {
  LivePoint point;
  CellLedger ledger;
};

// Runs one (config, rate) cell on the live runtime against a fresh database.
CellResult RunCell(const Experiment& exp, const Config& config, double rate) {
  Database db;
  TpccTables tables = LoadTpcc(db, exp.scale);
  TpccService service(db, tables, exp.scale);

  RuntimeOptions options;
  options.num_workers = exp.workers;
  options.mode = config.mode;
  options.num_flows = exp.connections;
  options.enable_stealing = config.stealing;
  options.enable_doorbells = config.doorbells;

  CellResult result;
  LivePoint& point = result.point;
  CellLedger& ledger = result.ledger;
  point.config = config.name;
  point.transport = exp.transport;
  point.offered_rps = rate;

  if (exp.transport == "tcp") {
    auto transport = std::make_unique<TcpTransport>(TcpOptionsFor(options));
    SocketTransportBase* sock = transport.get();
    Runtime runtime(options, std::move(transport), PaddedHandler(service, exp.pad));
    if (exp.skew) {
      runtime.mutable_rss().SetIndirection(
          std::vector<int>(static_cast<size_t>(options.num_flow_groups), 0));
    }
    runtime.Start();

    TcpLoadgenOptions gen;
    gen.port = sock->port();
    gen.connections = exp.connections;
    gen.threads = exp.threads;
    gen.arrivals = exp.arrivals;
    gen.rate_rps = rate;
    gen.duration = exp.duration;
    gen.warmup = exp.warmup;
    gen.seed = exp.seed;
    gen.make_payload = MakeTpccPayloadFactory(exp.scale);
    TcpLoadgenResult tcp = RunTcpLoadgen(gen);
    runtime.Shutdown();

    point.achieved_rps = tcp.achieved_rps();
    point.sent = tcp.sent;
    point.measured = tcp.measured;
    point.dropped = tcp.lost;
    point.send_lag_max_us = ToMicros(tcp.max_send_lag);
    point.p50_us = ToMicros(tcp.latency.P50());
    point.p99_us = ToMicros(tcp.latency.P99());
    point.p999_us = ToMicros(tcp.latency.P999());
    point.mean_us = tcp.latency.Mean() / 1e3;
    point.max_us = ToMicros(tcp.latency.Max());
    WorkerStats stats = runtime.TotalStats();
    point.steals = runtime.TotalShuffleStats().steals;
    point.stolen_events = stats.stolen_events;
    point.doorbells_sent = stats.doorbells_sent;
    point.remote_syscalls = stats.remote_syscalls;
    point.sheds = stats.sheds_deadline + stats.sheds_fairness + stats.sheds_admission;

    ledger.sent = tcp.sent;
    ledger.commits = service.commits();
    ledger.user_aborts = service.user_aborts();
    ledger.malformed = service.malformed();
    ledger.shed = tcp.shed;
    ledger.lost = tcp.lost;
    ledger.occ_retries = service.occ_retries();
    // Client side: every scheduled request completed, was shed, or is accounted
    // lost. Server side: every completion the runtime retired was answered by the
    // service (or refused as shed). Both must hold.
    ledger.balanced =
        tcp.completed + tcp.shed + tcp.lost == tcp.sent &&
        ledger.commits + ledger.user_aborts + ledger.malformed + point.sheds ==
            runtime.Completed();
    return result;
  }

  // Loopback: in-process generator drives Runtime::Inject directly.
  MeasuredCompletion completion;
  Runtime runtime(options, PaddedHandler(service, exp.pad), completion.Handler());
  if (exp.skew) {
    runtime.mutable_rss().SetIndirection(
        std::vector<int>(static_cast<size_t>(options.num_flow_groups), 0));
  }
  runtime.Start();

  GeneratorOptions gen;
  gen.arrivals = exp.arrivals;
  gen.rate_rps = rate;
  gen.duration = exp.duration;
  gen.num_flows = exp.connections;
  gen.seed = exp.seed;
  gen.make_payload = MakeTpccPayloadFactory(exp.scale);
  OpenLoopGenerator generator(gen);
  LoopbackSink sink(runtime);

  Nanos start = NowNanos();
  completion.set_measure_start(start + exp.warmup);
  GeneratorResult sent = generator.RunFrom(start, sink);
  // Quiesce before reading the clock: achieved throughput counts the drain tail, so
  // an overloaded point honestly reports its sustainable rate, not the offered one.
  while (runtime.Completed() < runtime.Injected()) {
    std::this_thread::yield();
  }
  Nanos end = NowNanos();
  runtime.Shutdown();

  LatencyHistogram hist = completion.Snapshot();
  Nanos window = end - completion.measure_start();
  point.achieved_rps = window > 0 ? static_cast<double>(completion.measured_count()) *
                                        1e9 / static_cast<double>(window)
                                  : 0.0;
  point.sent = sent.sent;
  point.measured = completion.measured_count();
  point.dropped = sent.dropped;
  point.send_lag_max_us = ToMicros(sent.max_send_lag);
  point.p50_us = ToMicros(hist.P50());
  point.p99_us = ToMicros(hist.P99());
  point.p999_us = ToMicros(hist.P999());
  point.mean_us = hist.Mean() / 1e3;
  point.max_us = ToMicros(hist.Max());
  WorkerStats stats = runtime.TotalStats();
  point.steals = runtime.TotalShuffleStats().steals;
  point.stolen_events = stats.stolen_events;
  point.doorbells_sent = stats.doorbells_sent;
  point.remote_syscalls = stats.remote_syscalls;
  point.sheds = stats.sheds_deadline + stats.sheds_fairness + stats.sheds_admission;

  ledger.sent = sent.sent;
  ledger.commits = service.commits();
  ledger.user_aborts = service.user_aborts();
  ledger.malformed = service.malformed();
  ledger.shed = point.sheds;
  ledger.lost = sent.dropped;  // ingress ring refusals never reached the service
  ledger.occ_retries = service.occ_retries();
  ledger.balanced = ledger.commits + ledger.user_aborts + ledger.malformed +
                        ledger.shed + ledger.lost ==
                    ledger.sent;
  return result;
}

// Median-of-N by p99 (whole row + its ledger kept together; see fig6_live_runtime).
CellResult MeasureCell(const Experiment& exp, const Config& config, double rate,
                       int repeats) {
  std::vector<CellResult> runs;
  runs.reserve(static_cast<size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    runs.push_back(RunCell(exp, config, rate));
  }
  std::sort(runs.begin(), runs.end(), [](const CellResult& a, const CellResult& b) {
    return a.point.p99_us < b.point.p99_us;
  });
  return runs[runs.size() / 2];
}

void PrintJsonArray(FILE* out, const std::vector<const LivePoint*>& points,
                    double LivePoint::* field) {
  std::fputc('[', out);
  for (size_t i = 0; i < points.size(); ++i) {
    std::fprintf(out, "%s%.2f", i == 0 ? "" : ", ", points[i]->*field);
  }
  std::fputc(']', out);
}

bool WriteFig10Json(const std::string& path, const Experiment& exp,
                    const std::string& scale_name,
                    const std::vector<LivePoint>& points, const CellLedger& totals,
                    bool all_cells_balanced) {
  std::vector<const LivePoint*> zygos;
  for (const LivePoint& point : points) {
    if (point.config == "zygos") {
      zygos.push_back(&point);
    }
  }
  if (zygos.empty()) {
    std::fprintf(stderr, "fig10_live_runtime: no 'zygos' points — refusing to write "
                 "%s\n", path.c_str());
    return false;
  }
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "fig10_live_runtime: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  bool ledger_balanced = all_cells_balanced && totals.malformed == 0;
  std::fprintf(out,
               "{\n"
               "  \"metric\": \"fig10_live_zygos_p99_us_at_peak_load\",\n"
               "  \"value\": %.2f,\n"
               "  \"unit\": \"us\",\n"
               "  \"commit\": \"\",\n"
               "  \"params\": {\n"
               "    \"transport\": \"%s\", \"scale\": \"%s\", \"warehouses\": %d,\n"
               "    \"arrivals\": \"%s\", \"workers\": %d, \"connections\": %d, "
               "\"skew\": %s, \"service_pad_us\": %.1f,\n"
               "    \"duration_ms\": %.0f, \"warmup_ms\": %.0f, \"seed\": %llu,\n",
               zygos.back()->p99_us, exp.transport.c_str(), scale_name.c_str(),
               exp.scale.num_warehouses, ArrivalKindName(exp.arrivals), exp.workers,
               exp.connections, exp.skew ? "true" : "false",
               static_cast<double>(exp.pad) / 1e3,
               static_cast<double>(exp.duration) / 1e6,
               static_cast<double>(exp.warmup) / 1e6,
               static_cast<unsigned long long>(exp.seed));
  std::fprintf(out, "    \"zygos_p99_monotone_in_load\": %s,\n",
               ZygosP99MonotoneInLoad(points) ? "true" : "false");
  std::fprintf(out, "    \"steal_leq_no_steal_at_peak\": %s,\n",
               StealLeqNoStealAtPeak(points) ? "true" : "false");
  std::fprintf(out, "    \"ledger_balanced\": %s,\n",
               ledger_balanced ? "true" : "false");
  std::fprintf(out,
               "    \"tpcc_sent\": %llu, \"tpcc_commits\": %llu, "
               "\"tpcc_user_aborts\": %llu,\n"
               "    \"tpcc_malformed\": %llu, \"tpcc_shed\": %llu, "
               "\"tpcc_lost\": %llu, \"tpcc_occ_retries\": %llu,\n",
               static_cast<unsigned long long>(totals.sent),
               static_cast<unsigned long long>(totals.commits),
               static_cast<unsigned long long>(totals.user_aborts),
               static_cast<unsigned long long>(totals.malformed),
               static_cast<unsigned long long>(totals.shed),
               static_cast<unsigned long long>(totals.lost),
               static_cast<unsigned long long>(totals.occ_retries));

  std::vector<std::string> configs;
  for (const LivePoint& point : points) {
    if (std::find(configs.begin(), configs.end(), point.config) == configs.end()) {
      configs.push_back(point.config);
    }
  }
  std::fprintf(out, "    \"curves\": {\n");
  for (size_t c = 0; c < configs.size(); ++c) {
    std::vector<const LivePoint*> curve;
    for (const LivePoint& point : points) {
      if (point.config == configs[c]) {
        curve.push_back(&point);
      }
    }
    std::string key = configs[c];
    std::replace(key.begin(), key.end(), '-', '_');
    std::fprintf(out, "      \"%s\": {\"offered_rps\": ", key.c_str());
    PrintJsonArray(out, curve, &LivePoint::offered_rps);
    std::fprintf(out, ", \"achieved_rps\": ");
    PrintJsonArray(out, curve, &LivePoint::achieved_rps);
    std::fprintf(out, ", \"p50_us\": ");
    PrintJsonArray(out, curve, &LivePoint::p50_us);
    std::fprintf(out, ", \"p99_us\": ");
    PrintJsonArray(out, curve, &LivePoint::p99_us);
    std::fprintf(out, ", \"p999_us\": ");
    PrintJsonArray(out, curve, &LivePoint::p999_us);
    std::fprintf(out, "}%s\n", c + 1 == configs.size() ? "" : ",");
  }
  std::fprintf(out, "    }\n  }\n}\n");
  bool ok = std::fclose(out) == 0;
  if (!ok) {
    std::fprintf(stderr, "fig10_live_runtime: write to %s failed\n", path.c_str());
  }
  return ok;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  Experiment exp;
  exp.transport = flags.GetString("transport", "loopback");
  exp.workers = static_cast<int>(flags.GetInt("workers", 2));
  exp.connections = static_cast<int>(flags.GetInt("connections", 8));
  exp.threads = static_cast<int>(flags.GetInt("threads", 2));
  const std::string arrivals_name = flags.GetString("arrivals", "poisson");
  const int warehouses = static_cast<int>(flags.GetInt("warehouses", 1));
  const std::string scale_name = flags.GetString("scale", "tiny");
  const double pad_us = flags.GetDouble("service-pad-us", 0.0);
  exp.pad = static_cast<Nanos>(pad_us * 1e3);
  const std::string configs_csv =
      flags.GetString("configs", "zygos,no-steal,partitioned");
  const std::string rates_csv = flags.GetString("rates", "");
  const std::string fractions_csv =
      flags.GetString("load-fractions", "0.25,0.5,0.75,0.95");
  const double calibrate_rate = flags.GetDouble("calibrate-rate", 0.0);
  const int cell_repeats = static_cast<int>(flags.GetInt("cell-repeats", 1));
  exp.duration = flags.GetInt("duration-ms", 500) * kMillisecond;
  exp.warmup = flags.GetInt("warmup-ms", 150) * kMillisecond;
  exp.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  exp.skew = flags.GetBool("skew", true);
  const std::string json_path = flags.GetString("json", "");
  if (!flags.CheckUnknown(kUsage)) {
    return 2;
  }
  if (exp.transport != "loopback" && exp.transport != "tcp") {
    std::fprintf(stderr, "fig10_live_runtime: unknown --transport=%s\n%s\n",
                 exp.transport.c_str(), kUsage);
    return 2;
  }
  auto arrivals = ParseArrivalKind(arrivals_name);
  if (!arrivals) {
    std::fprintf(stderr, "fig10_live_runtime: bad --arrivals\n%s\n", kUsage);
    return 2;
  }
  exp.arrivals = *arrivals;
  if (scale_name == "tiny") {
    exp.scale = LoaderOptions::Tiny(warehouses);
  } else if (scale_name == "full") {
    exp.scale.num_warehouses = warehouses;
  } else {
    std::fprintf(stderr, "fig10_live_runtime: unknown --scale=%s (tiny|full)\n%s\n",
                 scale_name.c_str(), kUsage);
    return 2;
  }
  if (exp.workers < 1 || exp.connections < 1 || exp.threads < 1 ||
      warehouses < 1 || exp.duration <= exp.warmup) {
    std::fprintf(stderr,
                 "fig10_live_runtime: need workers/connections/threads/warehouses "
                 ">= 1 and --duration-ms > --warmup-ms\n%s\n",
                 kUsage);
    return 2;
  }
  if (cell_repeats < 1) {
    std::fprintf(stderr, "fig10_live_runtime: --cell-repeats must be >= 1\n%s\n",
                 kUsage);
    return 2;
  }

  std::vector<Config> configs;
  for (const std::string& name : SplitCsv(configs_csv)) {
    auto config = ParseConfig(name);
    if (!config) {
      std::fprintf(stderr,
                   "fig10_live_runtime: unknown config '%s' in --configs\n%s\n",
                   name.c_str(), kUsage);
      return 2;
    }
    configs.push_back(*config);
  }
  if (configs.empty()) {
    std::fprintf(stderr, "fig10_live_runtime: --configs is empty\n%s\n", kUsage);
    return 2;
  }

  std::printf("# fig10_live_runtime: transport=%s scale=%s warehouses=%d arrivals=%s "
              "workers=%d connections=%d pad_us=%.1f skew=%d duration_ms=%.0f "
              "warmup_ms=%.0f seed=%llu\n",
              exp.transport.c_str(), scale_name.c_str(), warehouses,
              ArrivalKindName(exp.arrivals), exp.workers, exp.connections, pad_us,
              exp.skew ? 1 : 0, static_cast<double>(exp.duration) / 1e6,
              static_cast<double>(exp.warmup) / 1e6,
              static_cast<unsigned long long>(exp.seed));

  // Load points: explicit list, or fractions of a calibrated peak. TPC-C has no
  // closed-form service time, so calibration is always an overload probe: offer far
  // more than the engine can serve and read the achieved completion rate.
  std::vector<double> rates;
  for (const std::string& token : SplitCsv(rates_csv)) {
    double rate = ParseFlagNumberOrDie("rates", token, kUsage);
    if (rate <= 0) {
      std::fprintf(stderr, "fig10_live_runtime: --rates entries must be > 0\n");
      return 2;
    }
    rates.push_back(rate);
  }
  if (rates.empty()) {
    // Default probe: with a blocking pad the nominal capacity is workers/pad (the
    // pad dominates reduced-scale transaction times), probed at 3x; without a pad
    // there is no closed form — 30k rps is several times the peak on modest hosts
    // (override with --calibrate-rate on fast ones). Keeping the probe a small
    // multiple of the peak matters: the drain of the probe's backlog is serial.
    double probe = calibrate_rate > 0 ? calibrate_rate
                   : exp.pad > 0
                       ? 3.0 * static_cast<double>(exp.workers) * 1e9 /
                             static_cast<double>(exp.pad)
                       : 30'000.0;
    std::printf("# calibration: probing peak TPC-C throughput at %.0f rps...\n",
                probe);
    std::fflush(stdout);
    std::vector<double> peaks;
    for (int i = 0; i < cell_repeats; ++i) {
      peaks.push_back(
          RunCell(exp, Config{"zygos", RuntimeMode::kZygos, true, true}, probe)
              .point.achieved_rps);
    }
    std::sort(peaks.begin(), peaks.end());
    double peak = peaks[peaks.size() / 2];
    if (peak <= 0) {
      std::fprintf(stderr, "fig10_live_runtime: calibration produced no throughput\n");
      return 1;
    }
    std::printf("# calibration: peak sustainable throughput = %.0f tps\n", peak);
    for (const std::string& token : SplitCsv(fractions_csv)) {
      double fraction = ParseFlagNumberOrDie("load-fractions", token, kUsage);
      if (fraction <= 0) {
        std::fprintf(stderr,
                     "fig10_live_runtime: --load-fractions entries must be > 0\n");
        return 2;
      }
      rates.push_back(fraction * peak);
    }
  }
  std::sort(rates.begin(), rates.end());

  PrintLiveCsvHeader(stdout);
  std::vector<LivePoint> points;
  CellLedger totals;
  bool all_cells_balanced = true;
  for (const Config& config : configs) {
    for (double rate : rates) {
      CellResult cell = MeasureCell(exp, config, rate, cell_repeats);
      PrintLiveCsvRow(stdout, cell.point);
      if (!cell.ledger.balanced) {
        all_cells_balanced = false;
        std::printf("# ledger imbalance: config=%s rate=%.0f sent=%llu commits=%llu "
                    "aborts=%llu malformed=%llu shed=%llu lost=%llu\n",
                    config.name.c_str(), rate,
                    static_cast<unsigned long long>(cell.ledger.sent),
                    static_cast<unsigned long long>(cell.ledger.commits),
                    static_cast<unsigned long long>(cell.ledger.user_aborts),
                    static_cast<unsigned long long>(cell.ledger.malformed),
                    static_cast<unsigned long long>(cell.ledger.shed),
                    static_cast<unsigned long long>(cell.ledger.lost));
      }
      std::fflush(stdout);
      totals.Accumulate(cell.ledger);
      points.push_back(std::move(cell.point));
    }
  }

  // Headline: the acceptance view of the sweep (stable format; scripts grep it).
  double zygos_peak = 0, no_steal_peak = 0;
  for (const LivePoint& point : points) {
    if (point.config == "zygos") {
      zygos_peak = point.p99_us;
    } else if (point.config == "no-steal") {
      no_steal_peak = point.p99_us;
    }
  }
  bool ledger_balanced = all_cells_balanced && totals.malformed == 0;
  std::printf("# headline: tpcc live p99@peak zygos=%.1fus no-steal=%.1fus "
              "commits=%llu aborts=%llu monotone=%s steal_leq_no_steal=%s "
              "ledger_balanced=%s\n",
              zygos_peak, no_steal_peak,
              static_cast<unsigned long long>(totals.commits),
              static_cast<unsigned long long>(totals.user_aborts),
              ZygosP99MonotoneInLoad(points) ? "yes" : "no",
              StealLeqNoStealAtPeak(points) ? "yes" : "no",
              ledger_balanced ? "yes" : "no");

  if (!json_path.empty() &&
      !WriteFig10Json(json_path, exp, scale_name, points, totals,
                      all_cells_balanced)) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace zygos

int main(int argc, char** argv) { return zygos::Main(argc, argv); }
