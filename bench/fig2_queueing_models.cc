// Figure 2 reproduction: 99th-percentile tail latency vs load for the four idealized
// queueing models (16xM/G/1/PS, 16xM/G/1/FCFS, M/G/16/FCFS, M/G/16/PS) under the four
// service-time distributions (deterministic, exponential, bimodal-1, bimodal-2), S̄ = 1.
//
// Output: one CSV block per distribution with latency normalized to S̄, matching the
// paper's axes (load on x in [0.05, 0.99], p99 latency on y, values beyond 14·S̄ are
// off-scale in the paper's plot).
//
// Usage: fig2_queueing_models [--requests=N] [--servers=16] [--points=20]
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/distribution.h"
#include "src/common/flags.h"
#include "src/queueing/models.h"

namespace zygos {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto requests = static_cast<uint64_t>(flags.GetInt("requests", 300000));
  const int servers = static_cast<int>(flags.GetInt("servers", 16));
  const int points = static_cast<int>(flags.GetInt("points", 20));
  constexpr Nanos kMean = 1000;  // S̄ = 1 in normalized units of 1000 ns

  const std::vector<QueueingModelId> models = {
      {Discipline::kProcessorSharing, Topology::kPartitioned},
      {Discipline::kFcfs, Topology::kPartitioned},
      {Discipline::kFcfs, Topology::kCentralized},
      {Discipline::kProcessorSharing, Topology::kCentralized},
  };

  std::printf("# Figure 2: p99 tail latency (in units of S) vs load, n=%d servers\n", servers);
  for (const auto& name : SyntheticDistributionNames()) {
    auto service = MakeDistribution(name, kMean);
    std::printf("\n## distribution=%s\n", name.c_str());
    std::printf("load");
    for (const auto& m : models) {
      std::printf(",%s", m.Label(servers).c_str());
    }
    std::printf("\n");
    for (int i = 1; i <= points; ++i) {
      double load = static_cast<double>(i) / (points + 1) * 0.99 + 0.009;
      std::printf("%.3f", load);
      for (const auto& m : models) {
        QueueingRunParams params;
        params.num_servers = servers;
        params.load = load;
        params.num_requests = requests;
        params.warmup = requests / 20;
        params.seed = 1234 + static_cast<uint64_t>(i);
        auto result = RunQueueingModel(m, params, *service);
        std::printf(",%.2f", static_cast<double>(result.sojourn.P99()) / kMean);
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  std::printf("\n# Expected (paper): centralized models dominate partitioned; FCFS beats PS\n");
  std::printf("# except under bimodal-2 where PS wins; minima: det=1.0, exp=4.6, b1=5.5, "
              "b2=0.5 (in units of S).\n");
  return 0;
}

}  // namespace
}  // namespace zygos

int main(int argc, char** argv) { return zygos::Main(argc, argv); }
