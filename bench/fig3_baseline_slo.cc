// Figure 3 reproduction: maximum load meeting the SLO (p99 <= 10·S̄) as a function of
// the mean service time S̄, for the three baseline systems (Linux-partitioned,
// Linux-floating, IX) plus the two zero-overhead theoretical bounds (grey lines in the
// paper: centralized-FCFS and partitioned-FCFS).
//
// Expected shape (paper §3.4): IX and Linux-partitioned converge to the partitioned
// bound (IX by ~25 µs, Linux-partitioned by ~90-120 µs); Linux-floating converges
// slowly towards the much higher centralized bound and overtakes IX for large tasks.
//
// Usage: fig3_baseline_slo [--requests=N] [--iterations=K] [--slo_mult=10]
#include <cstdio>
#include <vector>

#include "src/common/distribution.h"
#include "src/common/flags.h"
#include "src/queueing/models.h"
#include "src/queueing/slo_search.h"
#include "src/sysmodel/experiment.h"

namespace zygos {
namespace {

double IdealMaxLoad(Topology t, const ServiceTimeDistribution& service,
                    uint64_t requests, int iterations, Nanos slo) {
  auto p99 = [&](double load) {
    QueueingRunParams q;
    q.load = load;
    q.num_requests = requests;
    q.warmup = requests / 10;
    q.seed = 11;
    return RunQueueingModel({Discipline::kFcfs, t}, q, service).sojourn.P99();
  };
  return FindMaxLoadAtSlo(p99, slo, {.max_load = 0.995, .iterations = iterations});
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto requests = static_cast<uint64_t>(flags.GetInt("requests", 100000));
  const int iterations = static_cast<int>(flags.GetInt("iterations", 7));
  const double slo_mult = flags.GetDouble("slo_mult", 10.0);

  const std::vector<Nanos> service_times = {2 * kMicrosecond,  5 * kMicrosecond,
                                            10 * kMicrosecond, 25 * kMicrosecond,
                                            50 * kMicrosecond, 100 * kMicrosecond,
                                            200 * kMicrosecond};
  const std::vector<SystemKind> systems = {SystemKind::kLinuxFloating, SystemKind::kIx,
                                           SystemKind::kLinuxPartitioned};

  std::printf("# Figure 3: max load @ SLO(p99 <= %.0fx mean) vs service time\n", slo_mult);
  for (const auto& name : {std::string("deterministic"), std::string("exponential"),
                           std::string("bimodal1")}) {
    std::printf("\n## distribution=%s\n", name.c_str());
    std::printf("service_us,M/G/16/FCFS,16xM/G/1/FCFS");
    for (auto kind : systems) {
      std::printf(",%s", SystemKindName(kind).c_str());
    }
    std::printf("\n");
    for (Nanos mean : service_times) {
      auto service = MakeDistribution(name, mean);
      Nanos slo = static_cast<Nanos>(slo_mult * static_cast<double>(mean));
      std::printf("%.0f", ToMicros(mean));
      std::printf(",%.3f",
                  IdealMaxLoad(Topology::kCentralized, *service, requests, iterations, slo));
      std::printf(",%.3f",
                  IdealMaxLoad(Topology::kPartitioned, *service, requests, iterations, slo));
      for (auto kind : systems) {
        SystemRunParams params;
        params.num_requests = requests;
        params.warmup = requests / 10;
        params.seed = 21;
        double max_load =
            MaxLoadAtSlo(kind, params, *service, slo, {.iterations = iterations});
        std::printf(",%.3f", max_load);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  std::printf("\n# Expected: IX >= 0.9x partitioned bound by ~25us; Linux-partitioned by "
              "~90-120us;\n# Linux-floating overtakes IX for large tasks, approaching the "
              "centralized bound.\n");
  return 0;
}

}  // namespace
}  // namespace zygos

int main(int argc, char** argv) { return zygos::Main(argc, argv); }
