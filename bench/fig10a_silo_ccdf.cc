// Figure 10a reproduction: complementary CDF of TPC-C transaction service time, per
// transaction type and for the full mix, measured on the real (in-repo) Silo-style
// engine with no network activity and GC disabled — exactly the paper's setup
// ("Silo locally driving the TPC-C benchmark... The Figure reports the service time").
//
// Output: per-type sample counts, mean/median/p99 (the paper quotes mix mean 33 µs,
// median 20 µs, p99 203 µs on their Xeon — absolute values differ on other hosts, the
// multi-modal *shape* and type ordering are the reproduction target), the achieved
// single-thread transaction rate, and a CCDF table (service time at survival
// probabilities 1e0..1e-4, matching the figure's y-axis).
//
// Usage: fig10a_silo_ccdf [--txns=N] [--warmup=N] [--warehouses=W] [--quick]
#include <array>
#include <cstdio>
#include <memory>

#include "src/common/flags.h"
#include "src/common/histogram.h"
#include "src/common/time_units.h"
#include "src/db/tpcc_driver.h"
#include "src/db/tpcc_loader.h"
#include "src/db/tpcc_txns.h"

namespace zygos {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  bool quick = flags.GetBool("quick", false);
  const auto txns = static_cast<uint64_t>(flags.GetInt("txns", quick ? 20'000 : 60'000));
  const auto warmup = static_cast<uint64_t>(flags.GetInt("warmup", txns / 10));
  LoaderOptions options;
  options.num_warehouses = static_cast<int>(flags.GetInt("warehouses", 1));

  std::printf("# Figure 10a: CCDF of TPC-C service time per transaction type (GC off)\n");
  std::printf("# loading %d warehouse(s)...\n", options.num_warehouses);
  Database db;
  TpccTables tables = LoadTpcc(db, options);
  TpccWorkload workload(db, tables, options);
  TpccDriver driver(db, workload);
  TpccMeasurement measurement = driver.Measure(txns, warmup, /*seed=*/101);

  std::printf("# single-thread rate: %.0f TPS (paper: 460 KTPS on 16 HT Xeon)\n",
              measurement.throughput_tps);
  std::printf("# NewOrder rollbacks: %llu, OCC retries: %llu\n",
              static_cast<unsigned long long>(measurement.user_aborts),
              static_cast<unsigned long long>(measurement.occ_retries));

  // Per-type summary plus the mix.
  std::printf("\ntype,count,mean_us,p50_us,p99_us,max_us\n");
  std::array<LatencyHistogram, kTpccTxnTypes + 1> histograms;
  for (int t = 0; t < kTpccTxnTypes; ++t) {
    for (Nanos sample : measurement.per_type[static_cast<size_t>(t)]) {
      histograms[static_cast<size_t>(t)].Record(sample);
    }
  }
  for (Nanos sample : measurement.mix) {
    histograms[kTpccTxnTypes].Record(sample);
  }
  for (int t = 0; t <= kTpccTxnTypes; ++t) {
    const auto& h = histograms[static_cast<size_t>(t)];
    const char* name = t < kTpccTxnTypes
                           ? TpccTxnTypeName(static_cast<TpccTxnType>(t))
                           : "Mix";
    std::printf("%s,%llu,%.1f,%.1f,%.1f,%.1f\n", name,
                static_cast<unsigned long long>(h.Count()), ToMicros(static_cast<Nanos>(h.Mean())),
                ToMicros(h.P50()), ToMicros(h.P99()), ToMicros(h.Max()));
  }

  // CCDF rows: service time at survival probability 10^0 .. 10^-4 (figure y-axis).
  std::printf("\nccdf_survival,OrderStatus_us,Payment_us,NewOrder_us,StockLevel_us,"
              "Delivery_us,Mix_us\n");
  const double survivals[] = {0.5, 0.1, 0.01, 0.001, 0.0001};
  for (double s : survivals) {
    std::printf("%.4f", s);
    for (auto type : {TpccTxnType::kOrderStatus, TpccTxnType::kPayment,
                      TpccTxnType::kNewOrder, TpccTxnType::kStockLevel,
                      TpccTxnType::kDelivery}) {
      std::printf(",%.1f",
                  ToMicros(histograms[static_cast<size_t>(type)].Quantile(1.0 - s)));
    }
    std::printf(",%.1f\n", ToMicros(histograms[kTpccTxnTypes].Quantile(1.0 - s)));
  }
  return 0;
}

}  // namespace
}  // namespace zygos

int main(int argc, char** argv) { return zygos::Main(argc, argv); }
