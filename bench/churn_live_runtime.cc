// Connection churn on the LIVE runtime: p99 latency and sustained accept rate as
// connections are born, die and reincarnate at increasing rates — the regime the
// flow-table recycling refactor exists for (connection handling, not service time,
// dominates tails under churn; cf. Sriraman et al., "Deconstructing the Tail at
// Scale Effect Across Network Protocols").
//
// Each cell runs the epoll TcpTransport runtime with a deliberately SMALL connection
// table (--max-flows, default 32) and drives it with the open-loop churn-mode TCP
// generator (src/loadgen/tcp_loadgen.h): per-connection lifetimes are exponential
// with mean --churn-ms, expired connections hang up and reconnect on fresh sockets.
// A sweep cell is healthy when:
//   - lifetime (distinct) connections far exceed the table capacity,
//   - zero capacity refusals (flow-id recycling kept every connect servable),
//   - table occupancy never exceeded the fixed capacity,
//   - pool misses per request stay ~0 after a warmup run (allocation-free recycling).
//
// stdout: one CSV row per churn point plus a `# headline:` line; `--json=PATH`
// writes the BENCH-contract report ({metric, value, unit, commit, params}) with the
// acceptance booleans scripts/ci.sh and scripts/bench_trajectory.sh gate on:
//   distinct_conns_exceed_capacity, zero_capacity_refusals, flat_table_occupancy,
//   allocation_free_after_warmup.
//
// Usage: churn_live_runtime [--workers=N] [--connections=N] [--threads=N]
//   [--rate=RPS] [--churn-ms=l1,l2,...]  (mean lifetimes, 0 = no churn baseline)
//   [--duration-ms=N] [--warmup-ms=N] [--max-flows=N] [--payload=N] [--seed=N]
//   [--arrivals=poisson|fixed] [--json=PATH]
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/flags.h"
#include "src/common/time_units.h"
#include "src/loadgen/arrival.h"
#include "src/loadgen/tcp_loadgen.h"
#include "src/runtime/runtime.h"
#include "src/runtime/tcp_transport.h"

namespace zygos {
namespace {

constexpr const char* kUsage =
    "usage: churn_live_runtime [--workers=N] [--connections=N] [--threads=N]\n"
    "  [--rate=RPS] [--churn-ms=l1,l2,...] [--duration-ms=N] [--warmup-ms=N]\n"
    "  [--max-flows=N] [--payload=N] [--seed=N] [--arrivals=poisson|fixed]\n"
    "  [--json=PATH]";

struct ChurnPoint {
  double churn_ms = 0;  // mean connection lifetime; 0 = no churn
  double offered_rps = 0;
  double achieved_rps = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  uint64_t measured = 0;
  uint64_t reconnects = 0;
  uint64_t distinct_conns = 0;      // lifetime connections accepted (measured run)
  double accept_rate_cps = 0;       // sustained accepts/second over the window
  uint64_t capacity_refusals = 0;
  uint64_t stall_drops = 0;
  uint64_t peak_open = 0;           // table occupancy high-water mark
  uint64_t flows_recycled = 0;
  double pool_miss_per_req = 0;     // heap allocs per request AFTER the warmup run
  bool clean = false;
};

struct Experiment {
  int workers = 2;
  int connections = 8;
  int threads = 2;
  double rate = 4000;
  Nanos duration = 0;
  Nanos warmup = 0;
  size_t max_flows = 32;
  size_t payload = 32;
  uint64_t seed = 1;
  ArrivalKind arrivals = ArrivalKind::kPoisson;
};

ChurnPoint RunCell(const Experiment& exp, double churn_ms) {
  RuntimeOptions options;
  options.num_workers = exp.workers;
  options.num_flows = exp.connections;
  options.max_flows = exp.max_flows;
  // Flow cap and table size from one source of truth (TcpOptionsFor).
  auto transport = std::make_unique<TcpTransport>(TcpOptionsFor(options));
  TcpTransport* tcp = transport.get();
  ViewHandler echo = [](uint64_t, std::string_view request, ResponseBuilder& out) {
    out.Append(request);
  };
  Runtime runtime(options, std::move(transport), std::move(echo));
  runtime.Start();

  TcpLoadgenOptions gen;
  gen.port = tcp->port();
  gen.connections = exp.connections;
  gen.threads = exp.threads;
  gen.arrivals = exp.arrivals;
  gen.rate_rps = exp.rate;
  gen.seed = exp.seed;
  gen.churn_mean_lifetime = static_cast<Nanos>(churn_ms * 1e6);
  gen.make_payload = [size = exp.payload](Rng&, std::string& out) {
    out.assign(size, 'x');
  };

  // Warmup run: grows every pool (and the per-core Connection freelists) to the
  // workload's working set, so the measured run can be judged allocation-free. Full
  // length: the in-flight buffer population scales with backlog depth, which needs
  // the same duration to reach its stationary range.
  gen.duration = exp.duration;
  gen.warmup = gen.duration / 2;
  RunTcpLoadgen(gen);
  uint64_t warmed_misses = runtime.TotalStats().pool_misses;
  uint64_t warmed_accepts = tcp->AcceptedConnections();

  // Measured run.
  gen.duration = exp.duration;
  gen.warmup = exp.warmup;
  gen.seed = exp.seed + 101;  // fresh schedule, same law
  TcpLoadgenResult result = RunTcpLoadgen(gen);

  ChurnPoint point;
  point.churn_ms = churn_ms;
  point.offered_rps = exp.rate;
  point.achieved_rps = result.achieved_rps();
  point.p50_us = ToMicros(result.latency.P50());
  point.p99_us = ToMicros(result.latency.P99());
  point.p999_us = ToMicros(result.latency.P999());
  point.measured = result.measured;
  point.reconnects = result.reconnects;
  point.distinct_conns = tcp->AcceptedConnections() - warmed_accepts;
  Nanos window = result.measure_end - result.measure_start;
  point.accept_rate_cps =
      window > 0 ? static_cast<double>(point.distinct_conns) * 1e9 /
                       static_cast<double>(window)
                 : 0.0;
  point.capacity_refusals = tcp->CapacityRefusals();
  point.stall_drops = tcp->StallDrops();
  point.peak_open = runtime.PeakOpenFlows();
  point.clean = result.clean;

  // Let in-flight teardowns retire before reading the recycle counters (workers are
  // still polling; bounded wait, not a timing assertion).
  uint64_t accepted = tcp->AcceptedConnections();
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (runtime.TotalStats().flows_recycled < accepted &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  WorkerStats stats = runtime.TotalStats();
  point.flows_recycled = stats.flows_recycled;
  point.pool_miss_per_req =
      result.measured > 0 ? static_cast<double>(stats.pool_misses - warmed_misses) /
                                static_cast<double>(result.measured)
                          : 0.0;
  runtime.Shutdown();
  return point;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  Experiment exp;
  exp.workers = static_cast<int>(flags.GetInt("workers", 2));
  exp.connections = static_cast<int>(flags.GetInt("connections", 8));
  exp.threads = static_cast<int>(flags.GetInt("threads", 2));
  exp.rate = flags.GetDouble("rate", 4000);
  const std::string churn_csv = flags.GetString("churn-ms", "0,160,80,40,20");
  exp.duration = flags.GetInt("duration-ms", 1500) * kMillisecond;
  exp.warmup = flags.GetInt("warmup-ms", 400) * kMillisecond;
  exp.max_flows = static_cast<size_t>(flags.GetInt("max-flows", 32));
  exp.payload = static_cast<size_t>(flags.GetInt("payload", 32));
  exp.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::string arrivals_name = flags.GetString("arrivals", "poisson");
  const std::string json_path = flags.GetString("json", "");
  if (!flags.CheckUnknown(kUsage)) {
    return 2;
  }
  auto arrivals = ParseArrivalKind(arrivals_name);
  if (!arrivals) {
    std::fprintf(stderr, "churn_live_runtime: unknown --arrivals=%s\n%s\n",
                 arrivals_name.c_str(), kUsage);
    return 2;
  }
  exp.arrivals = *arrivals;
  if (exp.workers < 1 || exp.connections < 1 || exp.threads < 1 ||
      exp.duration <= exp.warmup) {
    std::fprintf(stderr,
                 "churn_live_runtime: need workers/connections/threads >= 1 and "
                 "--duration-ms > --warmup-ms\n%s\n",
                 kUsage);
    return 2;
  }
  if (exp.max_flows < static_cast<size_t>(exp.connections)) {
    std::fprintf(stderr,
                 "churn_live_runtime: --max-flows must cover the concurrent "
                 "--connections\n%s\n",
                 kUsage);
    return 2;
  }

  std::vector<double> lifetimes;
  for (const std::string& token : SplitCsv(churn_csv)) {
    double lifetime = ParseFlagNumberOrDie("churn-ms", token, kUsage);
    if (lifetime < 0) {
      std::fprintf(stderr, "churn_live_runtime: --churn-ms entries must be >= 0\n");
      return 2;
    }
    lifetimes.push_back(lifetime);
  }
  if (lifetimes.empty()) {
    std::fprintf(stderr, "churn_live_runtime: --churn-ms is empty\n%s\n", kUsage);
    return 2;
  }
  // Ascending churn RATE: the no-churn baseline (0) first, then longest lifetime to
  // shortest. The headline and the JSON read the LAST point as "fastest churn".
  std::sort(lifetimes.begin(), lifetimes.end(), [](double a, double b) {
    if ((a == 0) != (b == 0)) {
      return a == 0;  // 0 (no churn) sorts first
    }
    return a > b;
  });

  std::printf("# churn_live_runtime: workers=%d connections=%d threads=%d rate=%.0f "
              "arrivals=%s duration_ms=%.0f warmup_ms=%.0f max_flows=%zu payload=%zu "
              "seed=%llu\n",
              exp.workers, exp.connections, exp.threads, exp.rate,
              ArrivalKindName(exp.arrivals), static_cast<double>(exp.duration) / 1e6,
              static_cast<double>(exp.warmup) / 1e6, exp.max_flows, exp.payload,
              static_cast<unsigned long long>(exp.seed));
  std::printf("churn_ms,offered_rps,achieved_rps,p50_us,p99_us,p999_us,measured,"
              "reconnects,distinct_conns,accept_rate_cps,capacity_refusals,"
              "stall_drops,peak_open,table_capacity,pool_miss_per_req,clean\n");

  std::vector<ChurnPoint> points;
  for (double lifetime : lifetimes) {
    ChurnPoint point = RunCell(exp, lifetime);
    std::printf("%.0f,%.0f,%.0f,%.1f,%.1f,%.1f,%llu,%llu,%llu,%.1f,%llu,%llu,%llu,"
                "%zu,%.4f,%d\n",
                point.churn_ms, point.offered_rps, point.achieved_rps, point.p50_us,
                point.p99_us, point.p999_us,
                static_cast<unsigned long long>(point.measured),
                static_cast<unsigned long long>(point.reconnects),
                static_cast<unsigned long long>(point.distinct_conns),
                point.accept_rate_cps,
                static_cast<unsigned long long>(point.capacity_refusals),
                static_cast<unsigned long long>(point.stall_drops),
                static_cast<unsigned long long>(point.peak_open), exp.max_flows,
                point.pool_miss_per_req, point.clean ? 1 : 0);
    std::fflush(stdout);
    points.push_back(point);
  }

  const ChurnPoint& fastest = points.back();
  bool any_churn = fastest.churn_ms > 0;
  bool exceed_capacity =
      !any_churn || fastest.distinct_conns > static_cast<uint64_t>(exp.max_flows);
  bool zero_refusals = true;
  bool flat_occupancy = true;
  bool allocation_free = true;
  bool all_clean = true;
  double worst_miss_rate = 0;
  for (const ChurnPoint& point : points) {
    zero_refusals = zero_refusals && point.capacity_refusals == 0;
    flat_occupancy = flat_occupancy && point.peak_open <= exp.max_flows;
    // "~0" rather than exactly 0: a stray post-warmup slab growth (stochastic
    // backlog depth) is noise, while the smallest real regression — one heap
    // allocation per RECONNECT — already costs reconnects/requests ≈ 0.1 per
    // request, and a per-request allocation costs >= 1. The 0.01 gate sits an order
    // of magnitude below both.
    allocation_free = allocation_free && point.pool_miss_per_req < 0.01;
    all_clean = all_clean && point.clean;
    worst_miss_rate = std::max(worst_miss_rate, point.pool_miss_per_req);
  }
  std::printf("# headline: churn p99@fastest(%.0fms)=%.1fus accept_rate=%.0f/s "
              "distinct=%llu capacity=%zu exceed_capacity=%s zero_refusals=%s "
              "flat_occupancy=%s allocation_free=%s clean=%s\n",
              fastest.churn_ms, fastest.p99_us, fastest.accept_rate_cps,
              static_cast<unsigned long long>(fastest.distinct_conns), exp.max_flows,
              exceed_capacity ? "yes" : "no", zero_refusals ? "yes" : "no",
              flat_occupancy ? "yes" : "no", allocation_free ? "yes" : "no",
              all_clean ? "yes" : "no");

  if (!json_path.empty()) {
    FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "churn_live_runtime: cannot open %s for writing\n",
                   json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"metric\": \"churn_p99_us_at_fastest_churn\",\n"
                 "  \"value\": %.2f,\n"
                 "  \"unit\": \"us\",\n"
                 "  \"commit\": \"\",\n"
                 "  \"params\": {\n"
                 "    \"workers\": %d, \"connections\": %d, \"threads\": %d, "
                 "\"rate_rps\": %.0f, \"arrivals\": \"%s\",\n"
                 "    \"duration_ms\": %.0f, \"warmup_ms\": %.0f, "
                 "\"table_capacity\": %zu, \"payload\": %zu, \"seed\": %llu,\n",
                 fastest.p99_us, exp.workers, exp.connections, exp.threads, exp.rate,
                 ArrivalKindName(exp.arrivals),
                 static_cast<double>(exp.duration) / 1e6,
                 static_cast<double>(exp.warmup) / 1e6, exp.max_flows, exp.payload,
                 static_cast<unsigned long long>(exp.seed));
    std::fprintf(out,
                 "    \"distinct_conns_exceed_capacity\": %s,\n"
                 "    \"zero_capacity_refusals\": %s,\n"
                 "    \"flat_table_occupancy\": %s,\n"
                 "    \"allocation_free_after_warmup\": %s,\n"
                 "    \"all_runs_clean\": %s,\n"
                 "    \"pool_miss_per_req_max\": %.6f,\n",
                 exceed_capacity ? "true" : "false", zero_refusals ? "true" : "false",
                 flat_occupancy ? "true" : "false",
                 allocation_free ? "true" : "false", all_clean ? "true" : "false",
                 worst_miss_rate);
    auto print_array = [out, &points](const char* key, auto getter, const char* fmt,
                                      bool last = false) {
      std::fprintf(out, "    \"%s\": [", key);
      for (size_t i = 0; i < points.size(); ++i) {
        if (i > 0) {
          std::fprintf(out, ", ");
        }
        std::fprintf(out, fmt, getter(points[i]));
      }
      std::fprintf(out, "]%s\n", last ? "" : ",");
    };
    print_array("churn_ms", [](const ChurnPoint& p) { return p.churn_ms; }, "%.0f");
    print_array("p99_us", [](const ChurnPoint& p) { return p.p99_us; }, "%.2f");
    print_array("achieved_rps",
                [](const ChurnPoint& p) { return p.achieved_rps; }, "%.0f");
    print_array("accept_rate_cps",
                [](const ChurnPoint& p) { return p.accept_rate_cps; }, "%.1f");
    print_array(
        "distinct_conns",
        [](const ChurnPoint& p) {
          return static_cast<unsigned long long>(p.distinct_conns);
        },
        "%llu");
    print_array(
        "peak_open",
        [](const ChurnPoint& p) { return static_cast<unsigned long long>(p.peak_open); },
        "%llu", /*last=*/true);
    std::fprintf(out, "  }\n}\n");
    if (std::fclose(out) != 0) {
      std::fprintf(stderr, "churn_live_runtime: write to %s failed\n",
                   json_path.c_str());
      return 1;
    }
  }
  return all_clean && zero_refusals && flat_occupancy ? 0 : 1;
}

}  // namespace
}  // namespace zygos

int main(int argc, char** argv) { return zygos::Main(argc, argv); }
