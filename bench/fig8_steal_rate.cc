// Figure 8 reproduction: normalized steal rate (steals per application event, %) vs
// throughput for ZygOS and ZygOS-without-interrupts, exponential service with
// S̄ = 25 µs.
//
// Expected shape (paper §6.1): few steals at low load (cores serve their own queues)
// and none at saturation (every core is busy with its own backlog); without interrupts
// the steal rate peaks around ~33% (the paper's cooperative-model simulator measured
// ~35%); interrupts substantially increase the peak rate, which occurs around ~77% of
// saturation.
//
// Usage: fig8_steal_rate [--requests=N] [--points=P] [--mean_us=25]
#include <cstdio>
#include <vector>

#include "src/common/distribution.h"
#include "src/common/flags.h"
#include "src/sysmodel/experiment.h"

namespace zygos {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto requests = static_cast<uint64_t>(flags.GetInt("requests", 120000));
  const int points = static_cast<int>(flags.GetInt("points", 14));
  const Nanos mean = FromMicros(flags.GetDouble("mean_us", 25.0));

  ExponentialDistribution service(mean);
  std::printf("# Figure 8: steal rate vs throughput, exponential S=%.0fus\n",
              ToMicros(mean));
  std::printf("system,load,throughput_mrps,steals_per_event_pct,ipis\n");
  for (auto kind : {SystemKind::kZygos, SystemKind::kZygosNoIpi}) {
    SystemRunParams params;
    params.num_requests = requests;
    params.warmup = requests / 10;
    params.seed = 51;
    auto sweep = LatencyThroughputSweep(kind, params, service, EvenLoads(points, 0.995));
    for (const auto& pt : sweep) {
      std::printf("%s,%.3f,%.4f,%.2f,%llu\n", SystemKindName(kind).c_str(), pt.load,
                  pt.throughput_rps / 1e6, 100.0 * pt.steal_fraction,
                  static_cast<unsigned long long>(pt.ipis));
    }
    std::fflush(stdout);
  }
  std::printf("\n# Expected: both curves rise from ~0 and fall towards 0 at saturation;\n"
              "# the no-interrupt peak is ~33%%; interrupts raise the peak substantially "
              "(peak near ~77%% of saturation).\n");
  return 0;
}

}  // namespace
}  // namespace zygos

int main(int argc, char** argv) { return zygos::Main(argc, argv); }
