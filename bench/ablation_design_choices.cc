// Design-choice ablations for the decisions DESIGN.md calls out. Each section isolates
// one mechanism of the ZygOS design and shows its effect on tail latency / throughput:
//
//   A. IPIs vs cooperative stealing (§4.5): the no-IPI variant reintroduces
//      head-of-line blocking ahead of network processing.
//   B. Steal-victim randomization (§5 "the order of access is randomized"): a linear
//      scan convoys thieves onto the same victim.
//   C. IX's adaptive batching bound B: throughput vs tail latency at tiny task sizes
//      (why the paper runs IX with B=1 for latency experiments, §3.3).
//   D. Connection placement skew: hashed (binomially imbalanced) vs balanced
//      round-robin placement — persistent imbalance is fatal for shared-nothing IX,
//      absorbed by ZygOS's stealing.
//   E. Cost sensitivity: how IPI delivery latency and steal cost move the p99
//      (calibration knobs of hw::CostModel).
//
// Usage: ablation_design_choices [--requests=N] [--quick]
#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/distribution.h"
#include "src/common/flags.h"
#include "src/common/time_units.h"
#include "src/sysmodel/experiment.h"
#include "src/sysmodel/system_model.h"

namespace zygos {
namespace {

SystemRunParams BaseParams(uint64_t requests) {
  SystemRunParams params;
  params.num_requests = requests;
  params.warmup = requests / 10;
  params.seed = 77;
  return params;
}

void SectionIpi(uint64_t requests) {
  std::printf("\n## A. IPIs vs cooperative stealing (exponential, 25 us)\n");
  std::printf("variant,load,p99_us,steal_frac,ipis\n");
  auto service = MakeDistribution("exponential", 25 * kMicrosecond);
  for (bool ipis : {true, false}) {
    for (double load : {0.5, 0.7, 0.85}) {
      SystemRunParams params = BaseParams(requests);
      params.load = load;
      auto result = RunZygosModel(params, *service, ipis);
      std::printf("%s,%.2f,%.1f,%.3f,%llu\n", ipis ? "zygos" : "zygos-noipi", load,
                  ToMicros(result.latency.P99()), result.StealFraction(),
                  static_cast<unsigned long long>(result.ipis));
    }
  }
}

void SectionVictimOrder(uint64_t requests) {
  std::printf("\n## B. steal-victim randomization (exponential, 10 us)\n");
  std::printf("variant,load,p99_us,steal_frac\n");
  auto service = MakeDistribution("exponential", 10 * kMicrosecond);
  for (bool randomize : {true, false}) {
    for (double load : {0.6, 0.8}) {
      SystemRunParams params = BaseParams(requests);
      params.load = load;
      params.randomize_steal_victims = randomize;
      auto result = RunSystemModel(SystemKind::kZygos, params, *service);
      std::printf("%s,%.2f,%.1f,%.3f\n", randomize ? "randomized" : "linear-scan", load,
                  ToMicros(result.latency.P99()), result.StealFraction());
    }
  }
}

void SectionBatching(uint64_t requests) {
  // At 2 us tasks IX's ~1.3 us per-request overhead puts saturation near load 0.6 of
  // the zero-overhead ideal; the 0.35/0.5 points sit below it (tail effects visible),
  // the batching gain shows up as throughput headroom.
  std::printf("\n## C. IX adaptive batching bound (deterministic, 2 us tasks)\n");
  std::printf("batch,load,throughput_mrps,p50_us,p99_us\n");
  auto service = MakeDistribution("deterministic", 2 * kMicrosecond);
  for (int batch : {1, 2, 8, 64}) {
    for (double load : {0.35, 0.5, 0.62}) {
      SystemRunParams params = BaseParams(requests);
      params.load = load;
      params.batch_bound = batch;
      auto result = RunSystemModel(SystemKind::kIx, params, *service);
      std::printf("B=%d,%.2f,%.4f,%.1f,%.1f\n", batch, load,
                  result.ThroughputRps() / 1e6, ToMicros(result.latency.P50()),
                  ToMicros(result.latency.P99()));
    }
  }
}

void SectionPlacement(uint64_t requests) {
  std::printf("\n## D. connection placement: balanced vs hashed skew (exp, 10 us, "
              "load 0.7)\n");
  std::printf("system,placement,p99_us,steal_frac\n");
  auto service = MakeDistribution("exponential", 10 * kMicrosecond);
  for (auto kind : {SystemKind::kIx, SystemKind::kZygos}) {
    for (bool balanced : {true, false}) {
      SystemRunParams params = BaseParams(requests);
      params.load = 0.7;
      params.balanced_connection_placement = balanced;
      auto result = RunSystemModel(kind, params, *service);
      std::printf("%s,%s,%.1f,%.3f\n", SystemKindName(kind).c_str(),
                  balanced ? "balanced" : "hashed-skew", ToMicros(result.latency.P99()),
                  result.StealFraction());
    }
  }
}

void SectionCostSensitivity(uint64_t requests) {
  std::printf("\n## E. cost sensitivity (exponential, 10 us, load 0.8)\n");
  auto service = MakeDistribution("exponential", 10 * kMicrosecond);
  std::printf("ipi_delivery_ns,p99_us\n");
  for (Nanos delivery : {700, 1400, 2800, 5600, 11200}) {
    SystemRunParams params = BaseParams(requests);
    params.load = 0.8;
    params.costs.ipi_delivery = delivery;
    auto result = RunSystemModel(SystemKind::kZygos, params, *service);
    std::printf("%lld,%.1f\n", static_cast<long long>(delivery),
                ToMicros(result.latency.P99()));
  }
  std::printf("steal_success_ns,p99_us,steal_frac\n");
  for (Nanos steal : {100, 250, 500, 1000, 2000}) {
    SystemRunParams params = BaseParams(requests);
    params.load = 0.8;
    params.costs.steal_success = steal;
    auto result = RunSystemModel(SystemKind::kZygos, params, *service);
    std::printf("%lld,%.1f,%.3f\n", static_cast<long long>(steal),
                ToMicros(result.latency.P99()), result.StealFraction());
  }
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  bool quick = flags.GetBool("quick", false);
  const auto requests =
      static_cast<uint64_t>(flags.GetInt("requests", quick ? 60'000 : 150'000));
  std::printf("# Design-choice ablations (DESIGN.md §4)\n");
  SectionIpi(requests);
  SectionVictimOrder(requests);
  SectionBatching(requests);
  SectionPlacement(requests);
  SectionCostSensitivity(requests);
  return 0;
}

}  // namespace
}  // namespace zygos

int main(int argc, char** argv) { return zygos::Main(argc, argv); }
