// Figure 10b reproduction: Silo/TPC-C 99th-percentile end-to-end latency vs throughput
// for Linux, IX and ZygOS.
//
// Two-step methodology as in the paper: (1) measure the real engine's per-transaction
// service-time distribution (Fig. 10a step); (2) drive the system models with that
// empirical distribution over the open-loop client population. The SLO is set at ~5x
// the measured p99 service time — the same ratio the paper uses (1000 µs vs. Silo's
// 203 µs p99 service time).
//
// Findings to reproduce: ZygOS sustains the SLO to the highest load (paper: 1.63x
// Linux, 1.26x IX); IX's tail degrades far below saturation (partitioned-FCFS
// behaviour); Linux pays a constant overhead but, being work-conserving, keeps a flat
// tail until its (lower) saturation point.
//
// Usage: fig10b_silo_latency [--requests=N] [--points=P] [--samples=N] [--quick]
#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/distribution.h"
#include "src/common/flags.h"
#include "src/common/histogram.h"
#include "src/common/time_units.h"
#include "src/db/tpcc_driver.h"
#include "src/db/tpcc_loader.h"
#include "src/db/tpcc_txns.h"
#include "src/sysmodel/experiment.h"
#include "src/sysmodel/system_model.h"

namespace zygos {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  bool quick = flags.GetBool("quick", false);
  const auto requests =
      static_cast<uint64_t>(flags.GetInt("requests", quick ? 60'000 : 150'000));
  const int points = static_cast<int>(flags.GetInt("points", quick ? 8 : 14));
  const auto samples =
      static_cast<uint64_t>(flags.GetInt("samples", quick ? 15'000 : 40'000));

  // Step 1: measure the real engine.
  std::printf("# Figure 10b: Silo/TPC-C p99 latency vs throughput (Linux, IX, ZygOS)\n");
  Database db;
  LoaderOptions options;
  TpccTables tables = LoadTpcc(db, options);
  TpccWorkload workload(db, tables, options);
  TpccDriver driver(db, workload);
  TpccMeasurement measurement = driver.Measure(samples, samples / 10, /*seed=*/103);
  EmpiricalDistribution measured = TpccMixDistribution(measurement);
  // This host is slower than the paper's 2.4 GHz Xeon; rescale the measured
  // distribution to Silo's reported mean service time (33 µs, §6.3.2) so the system
  // overheads are compared in the paper's regime. The multi-modal *shape* is the
  // measured one.
  EmpiricalDistribution service = measured.RescaledToMean(33 * kMicrosecond);

  LatencyHistogram service_hist;
  double rescale = 33.0 * kMicrosecond / measured.MeanNanos();
  for (Nanos s : measurement.mix) {
    service_hist.Record(static_cast<Nanos>(static_cast<double>(s) * rescale));
  }
  Nanos p99_service = service_hist.P99();
  Nanos slo = 5 * p99_service;  // the paper's 1000 µs ≈ 5x Silo's 203 µs p99
  std::printf(
      "# measured service mean %.1f us, rescaled to 33.0 us; p99 %.1f us -> SLO %.1f us\n",
      ToMicros(static_cast<Nanos>(measured.MeanNanos())), ToMicros(p99_service),
      ToMicros(slo));
  double saturation_ktps = 16.0 / service.MeanNanos() * 1e9 / 1e3;
  std::printf("# zero-overhead 16-core saturation: %.0f KTPS\n", saturation_ktps);

  // Step 2: sweep the system models.
  struct SystemConfig {
    const char* label;
    SystemKind kind;
  };
  const std::vector<SystemConfig> systems = {
      {"Linux", SystemKind::kLinuxFloating},
      {"IX", SystemKind::kIx},
      {"ZygOS", SystemKind::kZygos},
  };
  std::printf("\nsystem,load,throughput_ktps,p50_us,p99_us,meets_slo\n");
  for (const auto& system : systems) {
    SystemRunParams params;
    params.num_requests = requests;
    params.warmup = requests / 10;
    params.seed = 107;
    if (system.kind == SystemKind::kLinuxFloating) {
      // Workload-specific calibration: the paper's own Table 1 implies ~43 µs of
      // per-request Linux overhead for networked TPC-C (16 cores / 211 KTPS − 33 µs
      // service) — far above the microbenchmark value (kernel TCP/epoll work plus its
      // cache pressure on the DB working set). Use the paper-implied constant here.
      params.costs.linux_floating_per_request = 42'800;
    }
    auto sweep =
        LatencyThroughputSweep(system.kind, params, service, EvenLoads(points, 0.98));
    for (const auto& point : sweep) {
      std::printf("%s,%.3f,%.1f,%.1f,%.1f,%s\n", system.label, point.load,
                  point.throughput_rps / 1e3, ToMicros(point.p50), ToMicros(point.p99),
                  point.p99 <= slo ? "yes" : "no");
    }
  }
  return 0;
}

}  // namespace
}  // namespace zygos

int main(int argc, char** argv) { return zygos::Main(argc, argv); }
