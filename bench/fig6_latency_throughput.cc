// Figure 6 reproduction: 99th-percentile latency vs throughput for the synthetic
// microbenchmark, three distributions x {10 µs, 25 µs} mean task size.
// Systems: Linux (floating), IX, ZygOS (no interrupts), ZygOS, plus the theoretical
// M/G/16/FCFS lower bound. The horizontal SLO reference is 10x the mean.
//
// Also prints the §6.1 headline metric: ZygOS's achieved fraction of the theoretical
// maximum load at the SLO (paper: 75% for 10 µs exponential, 88% for 25 µs).
//
// Usage: fig6_latency_throughput [--requests=N] [--points=P]
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/distribution.h"
#include "src/common/flags.h"
#include "src/queueing/models.h"
#include "src/queueing/slo_search.h"
#include "src/sysmodel/experiment.h"

namespace zygos {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto requests = static_cast<uint64_t>(flags.GetInt("requests", 120000));
  const int points = static_cast<int>(flags.GetInt("points", 10));

  const std::vector<SystemKind> systems = {SystemKind::kLinuxFloating, SystemKind::kIx,
                                           SystemKind::kZygosNoIpi, SystemKind::kZygos};

  for (Nanos mean : {10 * kMicrosecond, 25 * kMicrosecond}) {
    for (const auto& name : {std::string("deterministic"), std::string("exponential"),
                             std::string("bimodal1")}) {
      auto service = MakeDistribution(name, mean);
      Nanos slo = 10 * mean;
      std::printf("\n## distribution=%s mean_us=%.0f slo_us=%.0f\n", name.c_str(),
                  ToMicros(mean), ToMicros(slo));
      std::printf("system,load,throughput_mrps,p99_us\n");

      // Theoretical M/G/16/FCFS curve.
      for (int i = 1; i <= points; ++i) {
        double load = 0.98 * static_cast<double>(i) / points;
        QueueingRunParams q;
        q.load = load;
        q.num_requests = requests;
        q.warmup = requests / 10;
        q.seed = 31;
        auto ideal =
            RunQueueingModel({Discipline::kFcfs, Topology::kCentralized}, q, *service);
        double mrps = load * 16.0 / (ToMicros(mean));  // ideal throughput at this load
        std::printf("M/G/16/FCFS,%.3f,%.4f,%.1f\n", load, mrps,
                    ToMicros(ideal.sojourn.P99()));
      }

      for (auto kind : systems) {
        SystemRunParams params;
        params.num_requests = requests;
        params.warmup = requests / 10;
        params.seed = 33;
        auto sweep = LatencyThroughputSweep(kind, params, *service, EvenLoads(points, 0.98));
        for (const auto& pt : sweep) {
          std::printf("%s,%.3f,%.4f,%.1f\n", SystemKindName(kind).c_str(), pt.load,
                      pt.throughput_rps / 1e6, ToMicros(pt.p99));
        }
        std::fflush(stdout);
      }

      // §6.1 headline: fraction of theoretical max load at SLO (exponential only).
      if (name == "exponential") {
        auto ideal_p99 = [&](double load) {
          QueueingRunParams q;
          q.load = load;
          q.num_requests = requests;
          q.warmup = requests / 10;
          q.seed = 35;
          return RunQueueingModel({Discipline::kFcfs, Topology::kCentralized}, q, *service)
              .sojourn.P99();
        };
        double ideal_max =
            FindMaxLoadAtSlo(ideal_p99, slo, {.max_load = 0.995, .iterations = 8});
        SystemRunParams params;
        params.num_requests = requests;
        params.warmup = requests / 10;
        params.seed = 35;
        double zygos_max =
            MaxLoadAtSlo(SystemKind::kZygos, params, *service, slo, {.iterations = 8});
        std::printf("# headline: ZygOS max load %.3f = %.0f%% of theoretical %.3f "
                    "(paper: %s)\n",
                    zygos_max, 100.0 * zygos_max / ideal_max, ideal_max,
                    mean == 10 * kMicrosecond ? "75%" : "88%");
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace zygos

int main(int argc, char** argv) { return zygos::Main(argc, argv); }
