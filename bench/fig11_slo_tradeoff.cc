// Figure 11 reproduction: the impact of the SLO choice on the system choice.
// IX with batching disabled (B=1), IX with adaptive bounded batching (B=64) and ZygOS,
// serving 10 µs tasks; the same latency-throughput data read against two different
// SLOs: a stringent 100 µs (10x mean) and a lenient 1000 µs (100x mean).
//
// Expected (paper §7): under the stringent SLO ZygOS sustains the highest load and
// IX-B=64 violates the SLO first; under the lenient SLO IX's adaptive batching delivers
// marginally higher throughput than ZygOS before violating.
//
// Usage: fig11_slo_tradeoff [--requests=N] [--points=P]
#include <cstdio>
#include <vector>

#include "src/common/distribution.h"
#include "src/common/flags.h"
#include "src/queueing/slo_search.h"
#include "src/sysmodel/experiment.h"

namespace zygos {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto requests = static_cast<uint64_t>(flags.GetInt("requests", 150000));
  const int points = static_cast<int>(flags.GetInt("points", 12));
  const Nanos mean = 10 * kMicrosecond;

  ExponentialDistribution service(mean);

  struct Config {
    const char* label;
    SystemKind kind;
    int batch;
  };
  const std::vector<Config> configs = {{"IX B=64", SystemKind::kIx, 64},
                                       {"IX B=1", SystemKind::kIx, 1},
                                       {"ZygOS", SystemKind::kZygos, 1}};

  std::printf("# Figure 11: IX (B=1, B=64) vs ZygOS, 10us tasks, two SLO views\n");
  std::printf("system,load,throughput_mrps,p99_us\n");
  for (const auto& config : configs) {
    SystemRunParams params;
    params.num_requests = requests;
    params.warmup = requests / 10;
    params.seed = 61;
    params.batch_bound = config.batch;
    auto sweep = LatencyThroughputSweep(config.kind, params, service,
                                        EvenLoads(points, 0.99));
    for (const auto& pt : sweep) {
      std::printf("%s,%.3f,%.4f,%.1f\n", config.label, pt.load, pt.throughput_rps / 1e6,
                  ToMicros(pt.p99));
    }
    std::fflush(stdout);
  }

  // Max throughput under each SLO.
  for (Nanos slo : {100 * kMicrosecond, 1000 * kMicrosecond}) {
    std::printf("\n## max load @ SLO(p99 <= %.0fus)\n", ToMicros(slo));
    for (const auto& config : configs) {
      SystemRunParams params;
      params.num_requests = requests;
      params.warmup = requests / 10;
      params.seed = 63;
      params.batch_bound = config.batch;
      double max_load =
          MaxLoadAtSlo(config.kind, params, service, slo, {.iterations = 8});
      std::printf("%s,%.3f\n", config.label, max_load);
      std::fflush(stdout);
    }
  }
  std::printf("\n# Expected: stringent SLO -> ZygOS first, IX B=1 second, IX B=64 last;\n"
              "# lenient SLO -> IX B=64 marginally overtakes ZygOS.\n");
  return 0;
}

}  // namespace
}  // namespace zygos

int main(int argc, char** argv) { return zygos::Main(argc, argv); }
